"""Tests for the declarative scenario layer (spec, builder, runner, registry)."""

import json

import pytest

from repro.analysis.experiment import (
    ExperimentConfig,
    ExperimentRunner,
    SystemVariant,
    scenario_from_config,
)
from repro.common.types import FailureModel
from repro.errors import ConfigurationError
from repro.scenarios import (
    BASELINE_AHL,
    SAGUARO_COORDINATOR,
    SAGUARO_OPTIMISTIC,
    DomainOverride,
    FaultEvent,
    ResultSet,
    RunResult,
    Scenario,
    ScenarioRunner,
    TopologySpec,
    WorkloadSpec,
    registry,
)


def small_scenario(**overrides) -> Scenario:
    """A fast-to-run scenario for determinism checks."""
    scenario = (
        Scenario.build()
        .name("small")
        .workload(num_transactions=12, cross_domain_ratio=0.25)
        .clients(2)
        .rounds(10.0)
        .seed(11)
        .finish()
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


class TestScenarioValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(engine="saguaro-quantum")

    def test_unknown_latency_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(latency_profile="interplanetary")

    def test_empty_and_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(seeds=())
        with pytest.raises(ConfigurationError):
            Scenario(seeds=(1, 1))

    def test_workload_ratio_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(cross_domain_ratio=1.5)

    def test_unknown_workload_style_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(style="teleport")

    def test_unknown_application_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.build().application("matchmaking")

    def test_bad_fault_event_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_ms=-1.0, domain="D11")
        with pytest.raises(ConfigurationError):
            FaultEvent(at_ms=0.0, domain="not-a-domain")
        with pytest.raises(ConfigurationError):
            FaultEvent(at_ms=0.0, domain="D11", action="bribe")

    def test_bad_fault_event_node_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at_ms=0.0, domain="D11", node=-1)
        with pytest.raises(ConfigurationError):
            FaultEvent(at_ms=0.0, domain="D11", node=True)
        with pytest.raises(ConfigurationError):
            FaultEvent(at_ms=0.0, domain="D11", node=1.5)

    def test_topology_duplicate_override_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(
                per_domain=(
                    DomainOverride(domain="D11", faults=2),
                    DomainOverride(domain="D11", faults=3),
                )
            )

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ConfigurationError):
            small_scenario().with_overrides(warp_factor=9)

    def test_builder_rejects_spec_plus_kwargs(self):
        with pytest.raises(ConfigurationError):
            Scenario.build().workload(WorkloadSpec(), num_transactions=5)

    def test_whole_spec_and_field_overrides_combine(self):
        # A field-level override must apply on top of a whole-spec replacement
        # passed in the same call, not be discarded by it.
        scenario = Scenario().with_overrides(
            workload=WorkloadSpec(), cross_domain_ratio=0.8
        )
        assert scenario.workload.cross_domain_ratio == 0.8

    def test_replicate_derives_consecutive_seeds(self):
        scenario = small_scenario().replicate(3)
        assert scenario.seeds == (11, 12, 13)
        assert small_scenario().replicate([4, 9]).seeds == (4, 9)
        with pytest.raises(ConfigurationError):
            small_scenario().replicate(0)


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


class TestScenarioSerialisation:
    def test_default_scenario_round_trips(self):
        scenario = Scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_rich_scenario_round_trips_through_json(self):
        scenario = (
            Scenario.build()
            .name("rich")
            .engine(SAGUARO_OPTIMISTIC)
            .topology(
                levels=3,
                branching=2,
                failure_model=FailureModel.BYZANTINE,
                faults=2,
                per_domain=(DomainOverride(domain="D11", faults=1, region="FR"),),
            )
            .application("ridesharing", hour_cap=20.0)
            .workload(style="rides", num_transactions=30, mobile_ratio=0.5)
            .faults(FaultEvent(at_ms=10.0, domain="D12", node=1))
            .clients(4)
            .latency("wide-area")
            .rounds(15.0)
            .timers(request_timeout_ms=500.0)
            .limits(max_simulated_ms=90_000.0, drain_ms=250.0)
            .replicate(seeds=(5, 6))
            .finish()
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        # The wire format is pure JSON (no enum/object leakage).
        assert json.loads(scenario.to_json()) == scenario.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        data = Scenario().to_dict()
        data["hyperdrive"] = True
        with pytest.raises(ConfigurationError):
            Scenario.from_dict(data)

    def test_registry_scenarios_all_round_trip(self):
        for name, scenario in registry.items():
            assert Scenario.from_dict(scenario.to_dict()) == scenario, name

    def test_run_result_round_trips(self):
        result = ScenarioRunner().run(small_scenario())[0]
        restored = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        restored_set = ResultSet.from_dict(ResultSet([result]).to_dict())
        assert restored_set == ResultSet([result])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_paper_figures_complete(self):
        for name in registry.PAPER_FIGURES:
            assert isinstance(registry.get(name), Scenario), name
        # Multi-panel figures also register their panels.
        for name in ("fig07a", "fig07b", "fig07c", "fig08c", "fig09b",
                     "fig10b", "fig11a"):
            assert isinstance(registry.get(name), Scenario), name

    def test_figure_parameters_match_the_paper(self):
        fig08 = registry.get("fig08")
        assert fig08.topology.failure_model is FailureModel.BYZANTINE
        assert registry.get("fig10").latency_profile == "wide-area"
        assert registry.get("fig12").latency_profile == "lan"
        assert registry.get("fig07c").workload.cross_domain_ratio == 1.0

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            registry.get("fig99")

    def test_duplicate_registration_requires_overwrite(self):
        name = "test-duplicate-registration"
        registry.register(name, small_scenario())
        try:
            with pytest.raises(ConfigurationError):
                registry.register(name, small_scenario())
            registry.register(name, small_scenario(), overwrite=True)
        finally:
            registry._REGISTRY.pop(name, None)

    def test_series_scenarios_derive_engines(self):
        series = registry.series_scenarios(registry.get("fig07a"))
        assert list(series) == [
            "AHL", "SharPer", "Coordinator", "Opt-10%C", "Opt-50%C", "Opt-90%C",
        ]
        assert series["AHL"].engine == BASELINE_AHL
        assert series["Opt-90%C"].workload.contention_ratio == 0.90
        assert series["Coordinator"].engine == SAGUARO_COORDINATOR


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


class TestScenarioRunner:
    def test_multi_seed_run_is_deterministic(self):
        scenario = small_scenario().replicate([11, 12])
        runner = ScenarioRunner()
        first = runner.run(scenario)
        second = runner.run(scenario)
        assert [r.seed for r in first] == [11, 12]
        assert [r.summary for r in first] == [r.summary for r in second]
        for result in first:
            assert result.summary.committed + result.summary.aborted == 12

    def test_json_round_trip_reproduces_byte_identical_results(self):
        scenario = small_scenario()
        restored = Scenario.from_json(scenario.to_json())
        original = ScenarioRunner().run(scenario)[0].summary
        replayed = ScenarioRunner().run(restored)[0].summary
        assert original == replayed

    def test_sweep_tags_params_and_groups(self):
        sweep = ScenarioRunner().sweep(
            small_scenario(), over="num_clients", values=[2, 4]
        )
        assert [r.param("num_clients") for r in sweep] == [2, 4]
        assert [r.num_clients for r in sweep] == [2, 4]
        grouped = sweep.grouped("num_clients")
        assert list(grouped) == [2, 4]
        aggregate = grouped[4].aggregate()
        assert aggregate["runs"] == 1.0
        assert aggregate["throughput_tps"] > 0

    def test_sweep_grid_covers_the_cartesian_product(self):
        grid = ScenarioRunner().sweep_grid(
            small_scenario(),
            {"engine": [SAGUARO_COORDINATOR, SAGUARO_OPTIMISTIC],
             "num_clients": [2, 3]},
        )
        combos = {(r.param("engine"), r.param("num_clients")) for r in grid}
        assert len(grid) == 4 and len(combos) == 4
        assert grid.filter(engine=SAGUARO_OPTIMISTIC, num_clients=3)[0].num_clients == 3

    def test_fault_schedule_crashes_a_replica_without_losing_commits(self):
        # f = 1 is tolerated by a 3-node crash domain, so a crashed replica
        # must not block any commitment.
        scenario = small_scenario(
            fault_schedule=(FaultEvent(at_ms=2.0, domain="D11", node=2),),
            cross_domain_ratio=0.0,
        )
        run = ScenarioRunner().execute(scenario)
        assert run.summary.committed == 12
        crashed = [n for n in run.deployment.nodes.values() if n.crashed]
        assert len(crashed) == 1
        assert crashed[0].domain.id.name == "D11"

    def test_fault_event_on_unknown_domain_or_node_raises(self):
        from repro.scenarios.runner import materialize

        with pytest.raises(ConfigurationError):
            materialize(
                small_scenario(fault_schedule=(FaultEvent(at_ms=1.0, domain="D19"),))
            )
        with pytest.raises(ConfigurationError):
            materialize(
                small_scenario(
                    fault_schedule=(FaultEvent(at_ms=1.0, domain="D11", node=7),)
                )
            )

    def test_negative_fault_node_rejected_when_scheduling(self):
        # FaultEvent validates node >= 0 at construction; the runner keeps a
        # second guard so a spec smuggled past validation (deserialisation
        # bugs, manual construction) still fails loudly instead of crashing
        # a node picked by Python's negative indexing.
        from repro.scenarios.runner import materialize

        event = FaultEvent(at_ms=1.0, domain="D11", node=0)
        object.__setattr__(event, "node", -1)
        with pytest.raises(ConfigurationError):
            materialize(small_scenario(fault_schedule=(event,)))

    def test_expect_liveness_replays_shuffled_schedules_in_time_order(self):
        from repro.scenarios.runner import materialize

        # Two crashes with one recovery in between: only one node is down at
        # any instant, so liveness must be expected.  The schedule lists the
        # recovery *first* — a replay in list order would see both crashes as
        # outstanding and wrongly give up on liveness.
        shuffled = (
            FaultEvent(at_ms=3.0, domain="D11", node=1, action="recover"),
            FaultEvent(at_ms=4.0, domain="D11", node=2),
            FaultEvent(at_ms=1.0, domain="D11", node=1),
        )
        run = materialize(small_scenario(fault_schedule=shuffled))
        assert run.expect_liveness() is True
        # Control: without the recovery the same crashes exceed f=1.
        over_tolerance = materialize(
            small_scenario(
                fault_schedule=(
                    FaultEvent(at_ms=4.0, domain="D11", node=2),
                    FaultEvent(at_ms=1.0, domain="D11", node=1),
                )
            )
        )
        assert over_tolerance.expect_liveness() is False

    def test_rides_workload_reaches_the_ridesharing_application(self):
        scenario = small_scenario(
            application="ridesharing",
            style="rides",
            mobile_ratio=0.5,
            num_transactions=8,
            ride_hours=1.0,
        )
        run = ScenarioRunner().execute(scenario)
        assert run.summary.committed == 8
        totals = run.deployment.application.total_hours_by_driver(
            run.deployment.root_summary()
        )
        assert sum(totals.values()) == pytest.approx(8.0)


# ---------------------------------------------------------------------------
# Legacy adapter equivalence
# ---------------------------------------------------------------------------


class TestParallelRunner:
    """The parallel sweep fan-out must be invisible in the results."""

    def test_parallel_sweep_grid_matches_serial_bit_for_bit(self):
        runner = ScenarioRunner()
        grid = {"num_clients": (2, 3)}
        serial = runner.sweep_grid(small_scenario(), grid)
        parallel = runner.sweep_grid(small_scenario(), grid, parallel=2)
        assert list(serial) == list(parallel)

    def test_parallel_run_matches_serial_across_seeds(self):
        scenario = small_scenario().replicate([11, 12])
        runner = ScenarioRunner()
        assert list(runner.run(scenario)) == list(runner.run(scenario, parallel=2))

    def test_constructor_default_parallel_applies_to_sweeps(self):
        serial = ScenarioRunner().sweep(
            small_scenario(), over="num_clients", values=[2, 3]
        )
        fanned = ScenarioRunner(parallel=2).sweep(
            small_scenario(), over="num_clients", values=[2, 3]
        )
        assert list(serial) == list(fanned)

    def test_parallel_validation_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ScenarioRunner(parallel=0)
        with pytest.raises(ConfigurationError):
            ScenarioRunner(parallel=True)
        with pytest.raises(ConfigurationError):
            ScenarioRunner(parallel=2.5)
        with pytest.raises(ConfigurationError):
            ScenarioRunner().run(small_scenario(), parallel=-1)

    def test_check_invariants_threads_through_sweeps(self, monkeypatch):
        from repro.scenarios import runner as runner_module

        calls = []
        monkeypatch.setattr(
            runner_module.ScenarioRun,
            "check_invariants",
            lambda self, expect_liveness=None: calls.append(self.seed),
        )
        runner = ScenarioRunner()  # constructor default: checking off
        runner.sweep(small_scenario(), over="num_clients", values=[2, 3])
        assert calls == []
        runner.sweep(
            small_scenario(), over="num_clients", values=[2, 3],
            check_invariants=True,
        )
        assert len(calls) == 2
        calls.clear()
        checked = ScenarioRunner(check_invariants=True)
        checked.sweep_grid(
            small_scenario(), {"num_clients": (2,)}, check_invariants=False
        )
        assert calls == []
        checked.sweep_grid(small_scenario(), {"num_clients": (2,)})
        assert len(calls) == 1


class TestLegacyAdapter:
    def test_experiment_runner_matches_scenario_runner_exactly(self):
        config = ExperimentConfig(
            num_transactions=12, num_clients=2, cross_domain_ratio=0.25,
            round_interval_ms=10.0, seed=11,
        )
        variant = SystemVariant("Coordinator", SAGUARO_COORDINATOR)
        with pytest.deprecated_call():
            legacy = ExperimentRunner(config).run(variant)
        scenario = scenario_from_config(config, variant)
        modern = ScenarioRunner().run(scenario)[0].summary
        assert legacy == modern

    def test_contention_override_flows_into_the_scenario(self):
        config = ExperimentConfig(num_transactions=12, num_clients=2)
        variant = SystemVariant("Opt", SAGUARO_OPTIMISTIC, contention_override=0.9)
        scenario = scenario_from_config(config, variant)
        assert scenario.workload.contention_ratio == 0.9
        assert scenario.engine == SAGUARO_OPTIMISTIC
        assert scenario.seeds == (config.seed,)


# ---------------------------------------------------------------------------
# Deployment single-shot guard
# ---------------------------------------------------------------------------


class TestRunWorkloadGuard:
    def test_run_workload_twice_raises_a_clear_error(self):
        run = ScenarioRunner().execute(small_scenario())
        with pytest.raises(ConfigurationError, match="single-shot"):
            run.deployment.run_workload(run.workload.transactions)

    def test_run_workload_after_create_clients_raises(self):
        from repro.scenarios.runner import materialize

        prepared = materialize(small_scenario())
        prepared.deployment.create_clients(prepared.workload.transactions[:2])
        with pytest.raises(ConfigurationError, match="create_clients"):
            prepared.deployment.run_workload(prepared.workload.transactions[2:])
