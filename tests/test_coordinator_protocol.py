"""Integration tests for the coordinator-based cross-domain protocol (§4)."""

import pytest

from repro.common.types import ClientId, DomainId, FailureModel, TransactionStatus
from repro.core.coordinator import CoordinatorCrossDomainProtocol
from tests.conftest import cross_transfer, internal_transfer, make_deployment

D01, D02, D03, D04 = (DomainId(0, i) for i in range(1, 5))
D11, D12, D13, D14 = (DomainId(1, i) for i in range(1, 5))
D21, D22 = DomainId(2, 1), DomainId(2, 2)


def _client(leaf: DomainId, index: int = 1) -> ClientId:
    return ClientId(home=leaf, index=index)


def _coordinator_component(deployment, domain_id):
    node = deployment.primary_node_of(domain_id)
    for component in node.components:
        if isinstance(component, CoordinatorCrossDomainProtocol):
            return component
    raise AssertionError("coordinator component missing")


class TestSingleCrossDomainTransaction:
    def test_committed_on_every_involved_domain(self, coordinator_deployment):
        tx = cross_transfer((D11, D12), client=_client(D01))
        summary = coordinator_deployment.run_workload([tx], drain_ms=300.0)
        assert summary.committed == 1
        for domain in (D11, D12):
            for node in coordinator_deployment.nodes_of(domain):
                assert tx.tid in node.ledger
                assert (
                    node.ledger.entry_of(tx.tid).status is TransactionStatus.COMMITTED
                )

    def test_not_committed_on_uninvolved_domains(self, coordinator_deployment):
        tx = cross_transfer((D11, D12), client=_client(D01))
        coordinator_deployment.run_workload([tx], drain_ms=300.0)
        for domain in (D13, D14):
            assert tx.tid not in coordinator_deployment.ledger_of(domain)

    def test_lca_domain_acts_as_coordinator(self, coordinator_deployment):
        tx = cross_transfer((D11, D12), client=_client(D01))
        coordinator_deployment.run_workload([tx], drain_ms=300.0)
        assert tx.tid in _coordinator_component(
            coordinator_deployment, D21
        ).coordinated_transactions()
        assert tx.tid not in _coordinator_component(
            coordinator_deployment, coordinator_deployment.hierarchy.root.id
        ).coordinated_transactions()

    def test_far_domains_are_coordinated_by_the_root(self, coordinator_deployment):
        tx = cross_transfer((D11, D13), client=_client(D01))
        coordinator_deployment.run_workload([tx], drain_ms=300.0)
        assert tx.tid in _coordinator_component(
            coordinator_deployment, coordinator_deployment.hierarchy.root.id
        ).coordinated_transactions()

    def test_transfer_effects_split_across_domains(self, coordinator_deployment):
        tx = cross_transfer((D11, D12), sender_index=0, recipient_index=1, amount=25.0,
                            client=_client(D01))
        coordinator_deployment.run_workload([tx], drain_ms=300.0)
        assert coordinator_deployment.state_of(D11).balance("acct:D11:0") == 1_000_000 - 25
        assert coordinator_deployment.state_of(D12).balance("acct:D12:1") == 1_000_000 + 25

    def test_three_domain_transaction_commits(self, coordinator_deployment):
        tx = cross_transfer((D11, D12, D13), client=_client(D01))
        summary = coordinator_deployment.run_workload([tx], drain_ms=400.0)
        assert summary.committed == 1
        for domain in (D11, D12, D13):
            assert tx.tid in coordinator_deployment.ledger_of(domain)

    def test_multipart_sequence_number_recorded_in_parent_dag(self, coordinator_deployment):
        tx = cross_transfer((D11, D12), client=_client(D01))
        coordinator_deployment.run_workload([tx], drain_ms=400.0)
        dag = coordinator_deployment.primary_node_of(D21).dag
        vertex = dag.vertex(tx.tid)
        assert vertex.fully_reported
        assert vertex.entry.position_in(D11) is not None
        assert vertex.entry.position_in(D12) is not None

    def test_byzantine_cross_domain_commit(self):
        deployment = make_deployment(failure_model=FailureModel.BYZANTINE)
        tx = cross_transfer((D11, D12), client=_client(D01))
        summary = deployment.run_workload([tx], drain_ms=400.0)
        assert summary.committed == 1


class TestConcurrentCrossDomainTransactions:
    def _mixed_workload(self):
        transactions = []
        clients = [_client(D01), _client(D02), _client(D03), _client(D04)]
        pairs = [(D11, D12), (D12, D11), (D13, D14), (D11, D13), (D12, D14)]
        for i in range(30):
            pair = pairs[i % len(pairs)]
            transactions.append(
                cross_transfer(
                    pair,
                    sender_index=i % 4,
                    recipient_index=(i + 1) % 4,
                    client=clients[i % len(clients)],
                )
            )
        for i in range(10):
            transactions.append(
                internal_transfer(D11, sender_index=i, recipient_index=i + 1,
                                  client=clients[0])
            )
        return transactions

    def test_everything_commits_under_concurrency(self, coordinator_deployment):
        transactions = self._mixed_workload()
        summary = coordinator_deployment.run_workload(transactions, drain_ms=500.0)
        assert summary.committed == len(transactions)
        assert summary.aborted == 0

    def test_overlapping_domains_agree_on_relative_order(self, coordinator_deployment):
        """Lemma 4.3: conflicting transactions commit in the same order everywhere."""
        transactions = self._mixed_workload()
        coordinator_deployment.run_workload(transactions, drain_ms=500.0)
        cross = [t for t in transactions if len(t.involved_domains) > 1]
        for i, first in enumerate(cross):
            for second in cross[i + 1 :]:
                shared = set(first.involved_domains) & set(second.involved_domains)
                if len(shared) < 2:
                    continue
                orders = set()
                for domain in shared:
                    ledger = coordinator_deployment.ledger_of(domain)
                    orders.add(ledger.relative_order(first.tid, second.tid))
                assert len(orders) == 1, (first.tid, second.tid, orders)

    def test_replica_ledgers_match_primary_under_concurrency(self, coordinator_deployment):
        transactions = self._mixed_workload()
        coordinator_deployment.run_workload(transactions, drain_ms=500.0)
        for domain in (D11, D12, D13, D14):
            orders = [
                node.ledger.committed_order()
                for node in coordinator_deployment.nodes_of(domain)
            ]
            assert all(order == orders[0] for order in orders)

    def test_cross_domain_transactions_counted_once(self, coordinator_deployment):
        transactions = self._mixed_workload()
        coordinator_deployment.run_workload(transactions, drain_ms=500.0)
        assert (
            coordinator_deployment.total_committed_transactions()
            == len(transactions)
        )


class TestLostCommitOrderRecovery:
    def test_commit_query_reorders_a_lost_commit(self, coordinator_deployment):
        """A prepared-everywhere transaction whose CoordinatorCommitOrder was
        lost (e.g. dropped from a deposed primary's batch buffer) is
        re-ordered when a participant's commit query reaches the primary."""
        from repro.core.coordinator import _CoordinationState
        from repro.core.messages import CommitQuery, CoordinatorCommitOrder

        component = _coordinator_component(coordinator_deployment, D21)
        node = component.node
        transaction = cross_transfer((D11, D12), client=_client(D01))
        state = _CoordinationState(
            transaction=transaction,
            origin_domain=D11,
            client_address="probe",
        )
        state.coordinator_sequence = 1
        state.prepared_parts = {D11: 3, D12: 4}
        state.all_prepared = True
        component._coord[transaction.tid] = state

        query = CommitQuery(
            tid=transaction.tid,
            participant_domain=D11,
            coordinator_sequence=1,
            participant_sequence=3,
            request_digest=transaction.request_digest,
            sender="D11:n0",
        )
        assert component.handle_message(query, "D11:n0")
        # batch_size=1 ⇒ the retried commit was proposed immediately into a slot.
        assert node.engine.batcher.pending_count == 0
        assert transaction.tid in {
            p.tid for p in node.engine._proposals.values()
            if isinstance(p, CoordinatorCommitOrder)
        }
