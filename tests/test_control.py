"""The self-tuning control plane: telemetry, controllers, wiring, goldens.

Five layers of coverage:

* unit tests for the windowed telemetry bus (:class:`MetricsWindow` ring
  semantics, :class:`TelemetryBus` snapshot-and-reset, zero-duration and
  missing-metric guards);
* unit tests for the pure controllers — the AIMD
  :class:`AdaptiveBatchController` (probe up while the target binds, back
  off multiplicatively on latency overrun, clamp to bounds) and the greedy
  :class:`LaneRebalancer` (deterministic, quiet when balanced, refuses
  moves that would just relocate the bottleneck);
* the :class:`ExecutionLanes` control surface the plane actuates
  (``snapshot``/``reset_window``/``assign``/``assignments``) and the
  :meth:`StateStore.shard_write_deltas` heat measurement;
* the configuration surface: :class:`ControlPolicy` validation and JSON
  round-trip, the scenario field + builder ``.control()``, the
  ``execute_ms`` cost override, and the Zipf-skewed workload generator;
* end-to-end: golden digests pinning ``policy="static"`` bit-identical to
  the pre-control deployments, adaptive-run determinism, ``control:*``
  trace evidence (batch growth and lane moves), and every adversarial
  scenario passing full invariant checking with controllers armed.
"""

import hashlib
import json

import pytest

from repro.common.config import WorkloadConfig
from repro.control.controllers import AdaptiveBatchController, LaneRebalancer
from repro.control.policy import CONTROL_POLICIES, ControlPolicy
from repro.control.telemetry import MetricsWindow, TelemetryBus
from repro.errors import ConfigurationError, SimulationError, StateError
from repro.ledger.state import StateStore
from repro.scenarios import Scenario, ScenarioRunner, registry
from repro.sim.cpu import ExecutionLanes
from repro.topology.builders import build_paper_figure1_tree
from repro.workloads.generator import WorkloadGenerator


# ---------------------------------------------------------------------------
# Unit level: the windowed telemetry bus
# ---------------------------------------------------------------------------


def test_metrics_window_counters_are_exact_and_ring_truncates():
    window = MetricsWindow(capacity=4)
    for value in (1, 2, 3, 4, 5, 6):
        window.observe(value)
    # count/total are exact over the window; the ring keeps the last 4.
    assert window.count == 6
    assert window.total == 21
    assert sorted(window.values()) == [3, 4, 5, 6]
    stats = window.stats()
    assert stats.mean == pytest.approx(4.5)
    assert stats.maximum == 6
    window.reset()
    assert window.count == 0 and window.total == 0.0 and window.values() == ()


def test_metrics_window_rejects_nonpositive_capacity():
    with pytest.raises(SimulationError):
        MetricsWindow(capacity=0)
    with pytest.raises(SimulationError):
        TelemetryBus(window=0)


def test_bus_snapshot_freezes_aggregates_and_resets_the_window():
    bus = TelemetryBus()
    bus.observe("batch.fill", 2.0)
    bus.observe("batch.fill", 4.0)
    bus.observe("batch.arrivals")
    snapshot = bus.snapshot(at_ms=10.0)
    assert snapshot.duration_ms == 10.0
    assert snapshot.count("batch.fill") == 2
    assert snapshot.total("batch.fill") == 6.0
    assert snapshot.mean("batch.fill") == pytest.approx(3.0)
    assert snapshot.maximum("batch.fill") == 4.0
    assert snapshot.rate_per_ms("batch.arrivals") == pytest.approx(0.1)
    # The snapshot drained the window: the next one starts empty.
    empty = bus.snapshot(at_ms=10.0)
    assert empty.duration_ms == 0.0  # zero-length window, clamped not negative
    assert empty.count("batch.fill") == 0
    assert empty.mean("batch.fill") is None
    assert empty.rate_per_ms("batch.fill") == 0.0  # no division error


def test_snapshot_missing_metric_reads_as_silence():
    snapshot = TelemetryBus().snapshot(at_ms=5.0)
    assert snapshot.count("nope") == 0
    assert snapshot.total("nope") == 0.0
    assert snapshot.mean("nope") is None
    assert snapshot.maximum("nope") is None


# ---------------------------------------------------------------------------
# Unit level: the AIMD batch/group controller
# ---------------------------------------------------------------------------


def _snapshot(**metrics):
    """A one-window snapshot from explicit metric -> sample-list inputs."""
    bus = TelemetryBus()
    for metric, values in metrics.items():
        for value in values:
            bus.observe(metric.replace("__", "."), value)
    return bus.snapshot(at_ms=10.0)


def _controller(batch=4, group=2, **policy_kwargs):
    policy = ControlPolicy(policy="adaptive", **policy_kwargs)
    return AdaptiveBatchController(policy, batch_size=batch, group_size=group)


def test_batch_grows_additively_while_the_target_binds():
    controller = _controller(batch=4, batch_increase=8)
    decision = controller.update(
        _snapshot(
            batch__arrivals=[1] * 10,  # arrivals >= target: demand saturates
            batch__decide_latency_ms=[10.0],
        )
    )
    assert decision.batch_size == 12
    assert controller.batch_target == 12


def test_batch_grows_while_peak_fill_is_within_striking_distance():
    # A flushed batch at half the cap is still evidence the cap binds.
    controller = _controller(batch=16, batch_increase=8)
    grown = controller.update(
        _snapshot(batch__arrivals=[1], batch__fill=[8.0])
    )
    assert grown.batch_size == 24
    # ...but a cap more than twice the peak burst stops growing.
    controller = _controller(batch=32, batch_increase=8)
    held = controller.update(
        _snapshot(batch__arrivals=[1], batch__fill=[8.0], batch__queue_depth=[3.0])
    )
    assert held.batch_size == 32


def test_batch_grows_when_the_queue_peaks_at_the_target():
    controller = _controller(batch=8, batch_increase=4)
    decision = controller.update(
        _snapshot(batch__arrivals=[1], batch__queue_depth=[2.0, 9.0])
    )
    assert decision.batch_size == 12


def test_batch_backs_off_multiplicatively_on_latency_overrun():
    controller = _controller(batch=32, target_decide_latency_ms=50.0)
    decision = controller.update(
        _snapshot(
            batch__arrivals=[1] * 64,  # saturated AND slow: latency wins
            batch__decide_latency_ms=[120.0],
        )
    )
    assert decision.batch_size == 16


def test_batch_holds_without_traffic_and_respects_bounds():
    controller = _controller(batch=8)
    assert controller.update(_snapshot()).batch_size == 8  # silence: no change
    controller = _controller(batch=128, batch_max=128, batch_increase=8)
    grown = controller.update(_snapshot(batch__arrivals=[1] * 256))
    assert grown.batch_size == 128  # clamped at batch_max
    controller = _controller(batch=1, batch_min=1)
    shrunk = controller.update(
        _snapshot(batch__arrivals=[1], batch__decide_latency_ms=[999.0])
    )
    assert shrunk.batch_size == 1  # clamped at batch_min


def test_controller_clamps_seeded_targets_into_policy_bounds():
    controller = _controller(batch=500, group=99, batch_max=64, group_max=8)
    assert controller.batch_target == 64
    assert controller.group_target == 8


def test_group_follows_the_same_aimd_rule():
    controller = _controller(group=2, group_increase=2)
    grown = controller.update(_snapshot(xdomain__forwards=[1, 1, 1]))
    assert grown.group_size == 4
    controller = _controller(group=8)
    retried = controller.update(
        _snapshot(xdomain__forwards=[1], xdomain__retries=[1])
    )
    assert retried.group_size == 4  # any abort-retry is a congestion signal
    controller = _controller(group=8, target_vote_rtt_ms=100.0)
    slow = controller.update(
        _snapshot(xdomain__forwards=[1] * 16, group__vote_rtt_ms=[250.0])
    )
    assert slow.group_size == 4


def test_controller_is_deterministic_across_instances():
    windows = [
        dict(batch__arrivals=[1] * n, batch__decide_latency_ms=[float(5 * n)])
        for n in (1, 8, 32, 64, 2, 0)
    ]
    first = _controller()
    second = _controller()
    for metrics in windows:
        assert first.update(_snapshot(**metrics)) == second.update(
            _snapshot(**metrics)
        )


# ---------------------------------------------------------------------------
# Unit level: the greedy lane rebalancer
# ---------------------------------------------------------------------------


def _rebalancer(**policy_kwargs):
    return LaneRebalancer(ControlPolicy(policy="adaptive", **policy_kwargs))


def test_rebalancer_is_quiet_when_lanes_are_balanced():
    rebalancer = _rebalancer(imbalance_ratio=1.25)
    assert rebalancer.rebalance([10.0, 10.0], [5, 5], [0, 1]) == []
    assert rebalancer.rebalance([12.0, 10.0], [6, 5], [0, 1]) == []  # within ratio
    assert rebalancer.rebalance([0.0, 0.0], [0, 0], [0, 1]) == []  # idle node
    assert rebalancer.rebalance([10.0], [5], [0]) == []  # single lane


def test_rebalancer_moves_the_hottest_shard_to_the_idlest_lane():
    moves = _rebalancer().rebalance(
        [30.0, 2.0], [20, 10, 1, 1], [0, 0, 1, 1]
    )
    assert moves == [(0, 0, 1)]


def test_rebalancer_never_splits_a_single_resident_shard():
    # Lane 0 is hot because of exactly one shard: moving it whole would just
    # relocate the hotspot, so the rebalancer leaves the map alone.
    moves = _rebalancer().rebalance([30.0, 2.0], [29, 1, 1, 1], [0, 1, 1, 1])
    assert moves == []


def test_rebalancer_refuses_moves_that_relocate_the_bottleneck():
    # The hottest shard carries ~all of the busy lane: after the move the
    # target lane would be the new bottleneck, so no move is proposed.
    moves = _rebalancer().rebalance([20.0, 1.0], [19, 1], [0, 0])
    assert moves == []


def test_rebalancer_caps_moves_per_interval_and_breaks_ties_by_index():
    lane_busy = [40.0, 1.0, 1.0, 1.0]
    writes = [10, 10, 10, 10]
    assignment = [0, 0, 0, 0]
    one = _rebalancer(max_moves_per_interval=1).rebalance(
        lane_busy, writes, assignment
    )
    assert one == [(0, 0, 1)]  # equal heat: lowest shard and lane indices win
    many = _rebalancer(max_moves_per_interval=8).rebalance(
        lane_busy, writes, assignment
    )
    assert many[0] == (0, 0, 1)
    assert len(many) >= 2  # keeps going until balanced or guarded
    assert many == _rebalancer(max_moves_per_interval=8).rebalance(
        lane_busy, writes, assignment
    )  # deterministic


def test_rebalancer_rejects_mismatched_inputs():
    with pytest.raises(SimulationError):
        _rebalancer().rebalance([10.0, 1.0], [5, 5, 5], [0, 1])


# ---------------------------------------------------------------------------
# The actuation surfaces: ExecutionLanes windows/pins, shard write deltas
# ---------------------------------------------------------------------------


def test_lanes_windowed_busy_resets_independently_of_totals():
    lanes = ExecutionLanes(lanes=4)
    assert lanes.span_of({0: 3.0, 1: 1.0}) == 3.0
    assert lanes.snapshot() == (3.0, 1.0, 0.0, 0.0)
    assert lanes.lane_busy_ms == (3.0, 1.0, 0.0, 0.0)
    lanes.reset_window()
    assert lanes.snapshot() == (0.0, 0.0, 0.0, 0.0)  # window cleared...
    assert lanes.lane_busy_ms == (3.0, 1.0, 0.0, 0.0)  # ...totals kept
    lanes.span_of({1: 2.0})
    assert lanes.snapshot() == (0.0, 2.0, 0.0, 0.0)


def test_lanes_assign_pins_and_unpins_shards():
    lanes = ExecutionLanes(lanes=4)
    assert lanes.lane_of(5) == 1  # round-robin default
    lanes.assign(5, 3)
    assert lanes.lane_of(5) == 3
    assert lanes.assignments == {5: 3}
    lanes.assign(5, 1)  # back to the round-robin lane: pin evaporates
    assert lanes.assignments == {}
    with pytest.raises(SimulationError):
        lanes.assign(5, 4)  # lane out of range
    with pytest.raises(SimulationError):
        lanes.assign(-1, 0)


def test_shard_write_deltas_measure_window_heat():
    store = StateStore("s", shards=4)
    for i in range(8):
        store.put(f"k{i}", i)
    baseline = store.shard_write_counts()
    assert store.shard_write_deltas() == baseline  # None baseline: full counts
    store.put("k0", 99)
    store.put("k0", 100)
    deltas = store.shard_write_deltas(baseline)
    assert sum(deltas) == 2
    assert deltas[store.shard_of("k0")] == 2
    with pytest.raises(StateError):
        store.shard_write_deltas((0, 0))  # wrong shard count


# ---------------------------------------------------------------------------
# The configuration surface: policy, scenario, builder, zipf workloads
# ---------------------------------------------------------------------------


def test_control_policy_validation():
    assert ControlPolicy().policy == "static"
    assert not ControlPolicy().enabled
    assert ControlPolicy(policy="adaptive").enabled
    for bad in (
        dict(policy="fuzzy"),
        dict(interval_ms=0),
        dict(window=0),
        dict(batch_min=0),
        dict(batch_max=0, batch_min=4),
        dict(batch_increase=0),
        dict(batch_decrease=1.0),
        dict(group_decrease=0.0),
        dict(target_decide_latency_ms=0),
        dict(target_vote_rtt_ms=-5),
        dict(imbalance_ratio=1.0),
        dict(max_moves_per_interval=0),
    ):
        with pytest.raises(ConfigurationError):
            ControlPolicy(**bad)
    assert "static" in CONTROL_POLICIES and "adaptive" in CONTROL_POLICIES


def test_control_policy_json_round_trip():
    policy = ControlPolicy(
        policy="adaptive", interval_ms=2.0, batch_increase=16, imbalance_ratio=2.0
    )
    assert ControlPolicy.from_dict(policy.to_dict()) == policy
    assert ControlPolicy.from_dict(json.loads(json.dumps(policy.to_dict()))) == policy
    with pytest.raises(ConfigurationError):
        ControlPolicy.from_dict({"policy": "adaptive", "warp_factor": 9})


def test_scenario_round_trips_control_zipf_and_execute_ms():
    scenario = (
        Scenario.build()
        .name("control-rt")
        .workload(num_transactions=40, zipf_skew=1.2)
        .control("adaptive", interval_ms=5.0)
        .sharding(state_shards=8, execution_lanes=4)
        .finish()
        .with_overrides(execute_ms=0.4)
    )
    assert scenario.control.policy == "adaptive"
    assert scenario.control.interval_ms == 5.0
    assert scenario.workload.zipf_skew == 1.2
    assert scenario.execute_ms == 0.4
    clone = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert clone == scenario
    assert "control" in scenario.describe() or scenario.control.enabled


def test_builder_control_defaults_to_adaptive_and_rejects_mixed_forms():
    assert Scenario.build().control().finish().control.policy == "adaptive"
    ready = ControlPolicy(policy="adaptive", interval_ms=3.0)
    assert Scenario.build().control(ready).finish().control is ready
    with pytest.raises(ConfigurationError):
        Scenario.build().control(ready, interval_ms=4.0)
    with pytest.raises(ConfigurationError):
        Scenario.build().control("fuzzy")


def test_execute_ms_overrides_both_cost_models():
    base = registry.get("zipf-sweep-b001")
    config = base.deployment_config(seed=0)
    assert config.crash_costs.execute_ms == base.execute_ms
    assert config.byzantine_costs.execute_ms == base.execute_ms
    untouched = registry.get("fig10a").deployment_config(seed=0)
    assert untouched.crash_costs.execute_ms != base.execute_ms
    with pytest.raises(ConfigurationError):
        base.with_overrides(execute_ms=-1.0)
    with pytest.raises(ConfigurationError):
        base.with_overrides(execute_ms=float("inf"))


def _zipf_workload(skew, n=400):
    hierarchy = build_paper_figure1_tree()
    config = WorkloadConfig(
        num_transactions=n, zipf_skew=skew, cross_domain_ratio=0.0, mobile_ratio=0.0
    )
    return WorkloadGenerator(hierarchy, config, num_clients=8).generate()


def test_zipf_skew_concentrates_senders_and_stays_deterministic():
    def top_share(workload):
        counts = {}
        for tx in workload.transactions:
            sender = tx.payload["sender"]
            counts[sender] = counts.get(sender, 0) + 1
        return max(counts.values()) / workload.num_transactions

    skewed, uniform = _zipf_workload(skew=1.5), _zipf_workload(skew=0.0)
    assert top_share(skewed) > 2 * top_share(uniform)
    again = _zipf_workload(skew=1.5)
    assert [t.payload for t in skewed.transactions] == [
        t.payload for t in again.transactions
    ]
    with pytest.raises(ConfigurationError):
        WorkloadConfig(zipf_skew=-0.1)


def test_zipf_sweep_family_is_registered():
    for size in registry.ZIPF_SWEEP_BATCHES:
        scenario = registry.get(f"zipf-sweep-b{size:03d}")
        assert scenario.batch_size == size
        assert not scenario.control.enabled
        assert scenario.workload.zipf_skew > 0
    adaptive = registry.get("zipf-sweep-adaptive")
    assert adaptive.control.enabled
    assert adaptive.workload.zipf_skew > 0
    assert adaptive.execution_lanes == registry.ZIPF_SWEEP_LANES


def test_control_smoke_mode_is_registered():
    from repro.faults.smoke import MODES

    assert "control" in MODES


# ---------------------------------------------------------------------------
# End to end: static goldens, adaptive determinism, control:* evidence
# ---------------------------------------------------------------------------

#: sha256 of (result json, trace json) for scaled-down runs of the two
#: flagship static scenarios, captured on the PR 5 tree *before* the control
#: plane existed.  ``policy="static"`` must keep matching them bit for bit.
STATIC_GOLDENS = {
    "fig10a": (
        "ddb3a0a244c603e5870d1949d8e2b62396563ea33a6d5cfce4755b20da8f810c",
        "aec7aa7a7a42810f828c7e85be5ea6f4b059d615b7227693cf24815b48531928",
    ),
    "shard-sweep": (
        "965dba420b32252f804d853dd9572788a9e3c316f8493fb6c2d5c51aecebff6f",
        "a3a57552172095d86877c3019a418dc3d2a3169e3a345502bf7510e2c559643e",
    ),
}


def _scaled_run(scenario):
    scenario = scenario.with_overrides(
        num_transactions=min(scenario.workload.num_transactions, 24),
        num_clients=min(scenario.num_clients, 4),
    )
    return ScenarioRunner().execute(scenario, seed=scenario.seeds[0])


@pytest.mark.parametrize("name", sorted(STATIC_GOLDENS))
def test_static_policy_is_bit_identical_to_pre_control_tree(name):
    run = _scaled_run(registry.get(name))
    result_digest = hashlib.sha256(
        json.dumps(run.run().to_dict(), sort_keys=True).encode()
    ).hexdigest()
    trace_digest = hashlib.sha256(run.trace.to_json().encode()).hexdigest()
    assert (result_digest, trace_digest) == STATIC_GOLDENS[name]


def _adaptive_run():
    scenario = registry.get("zipf-sweep-adaptive").with_overrides(
        num_transactions=96, num_clients=12
    )
    return ScenarioRunner(check_invariants=True).execute(
        scenario, seed=scenario.seeds[0]
    )


def test_adaptive_run_is_deterministic():
    first, second = _adaptive_run(), _adaptive_run()
    assert first.run().to_dict() == second.run().to_dict()
    assert first.trace.to_json() == second.trace.to_json()


def test_adaptive_run_emits_control_evidence():
    run = _adaptive_run()
    decisions = run.trace.control_decisions()
    assert decisions  # the plane ticked and acted
    grew = [
        event
        for node in decisions.values()
        for event in node["batch"]
        if event.get("size_to") > event.get("size_from")
    ]
    assert grew  # the batch controller probed upward under load
    moves = [
        event for node in decisions.values() for event in node["rebalance"]
    ]
    assert moves  # hot shards were re-placed off the busiest lane
    for event in moves:
        assert event.get("from_lane") != event.get("to_lane")
        assert 0 <= event.get("to_lane") < registry.ZIPF_SWEEP_LANES
    assert run.summary.pending == 0


@pytest.mark.parametrize("name", registry.ADVERSARIAL_SCENARIOS)
def test_adversarial_scenarios_hold_invariants_with_controllers_armed(name):
    scenario = registry.get(name).with_overrides(
        control=ControlPolicy(policy="adaptive"),
        state_shards=8,
        execution_lanes=4,
    )
    run = ScenarioRunner(check_invariants=True).execute(
        scenario, seed=scenario.seeds[0]
    )
    assert run.summary.pending == 0
