"""Unit tests for transactions and committed entries."""

import pytest

from repro.common.types import (
    ClientId,
    DomainId,
    SequenceNumber,
    TransactionId,
    TransactionKind,
    TransactionStatus,
)
from repro.errors import TransactionError
from repro.ledger.transaction import CommittedEntry, Transaction

D11, D12, D13 = DomainId(1, 1), DomainId(1, 2), DomainId(1, 3)


def _tx(kind=TransactionKind.INTERNAL, domains=(D11,), **kwargs):
    return Transaction(
        tid=TransactionId(number=kwargs.pop("number", 1)),
        kind=kind,
        involved_domains=tuple(domains),
        **kwargs,
    )


class TestTransactionValidation:
    def test_internal_must_involve_exactly_one_domain(self):
        with pytest.raises(TransactionError):
            _tx(TransactionKind.INTERNAL, (D11, D12))

    def test_cross_domain_needs_two_domains(self):
        with pytest.raises(TransactionError):
            _tx(TransactionKind.CROSS_DOMAIN, (D11,))

    def test_mobile_needs_home_and_remote(self):
        with pytest.raises(TransactionError):
            _tx(TransactionKind.MOBILE, (D12,))
        mobile = _tx(
            TransactionKind.MOBILE, (D12,), home_domain=D11, remote_domain=D12
        )
        assert mobile.is_mobile
        assert mobile.primary_domain == D12

    def test_duplicate_involved_domains_rejected(self):
        with pytest.raises(TransactionError):
            _tx(TransactionKind.CROSS_DOMAIN, (D11, D11))

    def test_no_involved_domains_rejected(self):
        with pytest.raises(TransactionError):
            _tx(TransactionKind.INTERNAL, ())


class TestTransactionQueries:
    def test_involves(self):
        tx = _tx(TransactionKind.CROSS_DOMAIN, (D11, D12))
        assert tx.involves(D11) and tx.involves(D12) and not tx.involves(D13)

    def test_overlap(self):
        a = _tx(TransactionKind.CROSS_DOMAIN, (D11, D12), number=1)
        b = _tx(TransactionKind.CROSS_DOMAIN, (D12, D13), number=2)
        assert a.overlap_with(b) == (D12,)

    def test_conflicts_on_write_write(self):
        a = _tx(domains=(D11,), number=1, write_keys=("x",))
        b = _tx(domains=(D11,), number=2, write_keys=("x",))
        c = _tx(domains=(D11,), number=3, write_keys=("y",))
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)

    def test_conflicts_on_read_write(self):
        reader = _tx(domains=(D11,), number=1, read_keys=("x",))
        writer = _tx(domains=(D11,), number=2, write_keys=("x",))
        assert reader.conflicts_with(writer)
        assert writer.conflicts_with(reader)

    def test_read_read_is_not_a_conflict(self):
        a = _tx(domains=(D11,), number=1, read_keys=("x",))
        b = _tx(domains=(D11,), number=2, read_keys=("x",))
        assert not a.conflicts_with(b)

    def test_digest_changes_with_payload(self):
        a = _tx(domains=(D11,), number=1, payload={"amount": 5})
        b = _tx(domains=(D11,), number=1, payload={"amount": 6})
        assert a.request_digest != b.request_digest

    def test_digest_is_stable(self):
        a = _tx(domains=(D11,), number=1, payload={"amount": 5})
        assert a.request_digest == a.request_digest


class TestCommittedEntry:
    def test_sequence_must_reference_involved_domains(self):
        tx = _tx(domains=(D11,), number=1)
        with pytest.raises(TransactionError):
            CommittedEntry(transaction=tx, sequence=SequenceNumber.single(D12, 1))

    def test_position_lookup(self):
        tx = _tx(TransactionKind.CROSS_DOMAIN, (D11, D12), number=2)
        entry = CommittedEntry(
            transaction=tx,
            sequence=SequenceNumber.multi([(D11, 3), (D12, 7)]),
        )
        assert entry.position_in(D11) == 3
        assert entry.position_in(D12) == 7
        assert entry.position_in(D13) is None

    def test_with_status_preserves_identity(self):
        tx = _tx(domains=(D11,), number=1)
        entry = CommittedEntry(transaction=tx, sequence=SequenceNumber.single(D11, 1))
        aborted = entry.with_status(TransactionStatus.ABORTED)
        assert aborted.tid == entry.tid
        assert aborted.status is TransactionStatus.ABORTED
        assert entry.status is TransactionStatus.COMMITTED

    def test_canonical_bytes_ignore_status(self):
        """Status flips (optimistic finalise/abort) must not change the chain hash."""
        tx = _tx(domains=(D11,), number=1)
        entry = CommittedEntry(transaction=tx, sequence=SequenceNumber.single(D11, 1))
        assert entry.canonical_bytes() == entry.with_status(
            TransactionStatus.ABORTED
        ).canonical_bytes()
        other = CommittedEntry(transaction=tx, sequence=SequenceNumber.single(D11, 2))
        assert entry.canonical_bytes() != other.canonical_bytes()
