"""Unit and property tests for the blockchain state store."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InsufficientBalanceError, StateError, UnknownAccountError
from repro.ledger.state import StateStore


class TestKeyValue:
    def test_put_get_roundtrip(self):
        state = StateStore("s")
        state.put("k", 42)
        assert state.get("k") == 42
        assert "k" in state and len(state) == 1

    def test_strict_read_raises_for_missing_key(self):
        with pytest.raises(StateError):
            StateStore().read("missing")

    def test_version_increments_per_write(self):
        state = StateStore()
        assert state.version == 0
        state.put("a", 1)
        state.put("b", 2)
        state.put("a", 3)
        assert state.version == 3

    def test_increment_creates_and_adds(self):
        state = StateStore()
        assert state.increment("counter", 5) == 5
        assert state.increment("counter", 2) == 7

    def test_increment_non_numeric_rejected(self):
        state = StateStore()
        state.put("k", "text")
        with pytest.raises(StateError):
            state.increment("k")


class TestAccounts:
    def test_create_and_balance(self):
        state = StateStore()
        state.create_account("alice", 100)
        assert state.balance("alice") == 100
        assert state.has_account("alice")

    def test_duplicate_account_rejected(self):
        state = StateStore()
        state.create_account("alice", 1)
        with pytest.raises(StateError):
            state.create_account("alice", 2)

    def test_unknown_account_raises(self):
        with pytest.raises(UnknownAccountError):
            StateStore().balance("ghost")

    def test_transfer_moves_funds(self):
        state = StateStore()
        state.create_account("alice", 100)
        state.create_account("bob", 10)
        state.transfer("alice", "bob", 30)
        assert state.balance("alice") == 70
        assert state.balance("bob") == 40

    def test_overdraft_rejected_and_rolled_back(self):
        state = StateStore()
        state.create_account("alice", 10)
        state.create_account("bob", 0)
        with pytest.raises(InsufficientBalanceError):
            state.transfer("alice", "bob", 100)
        assert state.balance("alice") == 10

    def test_transfer_to_missing_recipient_rolls_back_sender(self):
        state = StateStore()
        state.create_account("alice", 50)
        with pytest.raises(StateError):
            state.transfer("alice", "ghost", 10)
        assert state.balance("alice") == 50

    def test_negative_amounts_rejected(self):
        state = StateStore()
        state.create_account("alice", 50)
        with pytest.raises(StateError):
            state.deposit("alice", -5)
        with pytest.raises(StateError):
            state.withdraw("alice", -5)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 50)),
            max_size=60,
        )
    )
    def test_transfers_conserve_total_balance(self, moves):
        state = StateStore()
        accounts = [f"acct{i}" for i in range(4)]
        for account in accounts:
            state.create_account(account, 1_000)
        total_before = sum(state.balance(a) for a in accounts)
        for sender_i, recipient_i, amount in moves:
            if sender_i == recipient_i:
                continue
            try:
                state.transfer(accounts[sender_i], accounts[recipient_i], amount)
            except InsufficientBalanceError:
                pass
        assert sum(state.balance(a) for a in accounts) == total_before


class TestDeltasAndSnapshots:
    def test_delta_since_reports_latest_values(self):
        state = StateStore()
        state.put("a", 1)
        version = state.version
        state.put("b", 2)
        state.put("a", 3)
        assert state.delta_since(version) == {"b": 2, "a": 3}
        assert state.delta_since(state.version) == {}

    def test_delta_since_invalid_version(self):
        with pytest.raises(StateError):
            StateStore().delta_since(5)

    def test_snapshot_and_restore(self):
        state = StateStore()
        state.put("a", 1)
        snapshot = state.snapshot()
        state.put("a", 2)
        state.put("b", 3)
        state.restore(snapshot)
        assert state.get("a") == 1
        assert state.get("b") is None

    def test_totals_by_prefix(self):
        state = StateStore()
        state.put("acct:1", 10)
        state.put("acct:2", 15)
        state.put("other", 99)
        assert state.totals("acct:") == 25

    def test_write_log_filters_by_version(self):
        state = StateStore()
        state.put("a", 1)
        mark = state.version
        state.put("b", 2)
        log = state.write_log(mark)
        assert [record.key for record in log] == ["b"]


class _MirroredStore(StateStore):
    """A store that keeps the naive single full log as an external oracle."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.mirror = []

    def put(self, key, value):
        from repro.ledger.state import WriteRecord

        version = super().put(key, value)
        self.mirror.append(WriteRecord(version=version, key=key, value=value))
        return version


class TestDeltaIndexPinning:
    """The indexed (now per-shard) delta/write-log fast paths return exactly
    what the naive single-full-log scan returned before the per-key
    latest-version index (and the shard split) landed."""

    @staticmethod
    def _naive_delta(state, version):
        delta = {}
        for record in state.mirror:
            if record.version > version:
                delta[record.key] = record.value
        return delta

    @staticmethod
    def _churned_store(shards=1):
        import random

        rng = random.Random(42)
        state = _MirroredStore("pinning", shards=shards)
        keys = [f"k{i}" for i in range(17)]
        snapshot = None
        for step in range(400):
            action = rng.random()
            if action < 0.80:
                state.put(rng.choice(keys), rng.randrange(1000))
            elif action < 0.90 or snapshot is None:
                snapshot = state.snapshot()
            else:
                state.restore(snapshot)
        return state

    @pytest.mark.parametrize("shards", [1, 5])
    def test_deltas_match_the_naive_full_log_scan(self, shards):
        state = self._churned_store(shards)
        for version in (0, 1, 7, 100, 399, state.version - 1, state.version):
            assert state.delta_since(version) == self._naive_delta(state, version)

    @pytest.mark.parametrize("shards", [1, 5])
    def test_write_log_matches_the_naive_filter(self, shards):
        state = self._churned_store(shards)
        for since in (-3, 0, 1, 100, state.version):
            expected = tuple(r for r in state.mirror if r.version > since)
            assert state.write_log(since) == expected

    def test_delta_extraction_is_proportional_to_the_suffix(self):
        state = StateStore("hot")
        for i in range(5_000):
            state.put(f"k{i % 50}", i)
        mark = state.version
        state.put("fresh", 1)
        # The slice after `mark` holds one record; the naive scan walked 5001.
        assert state.delta_since(mark) == {"fresh": 1}
        assert len(state.write_log(mark)) == 1
