"""Tests for the workload generator and the two applications."""

import pytest

from repro.common.config import WorkloadConfig
from repro.common.types import ClientId, DomainId, TransactionId, TransactionKind
from repro.core.application import KeyValueApplication
from repro.errors import WorkloadError
from repro.ledger.state import StateStore
from repro.ledger.transaction import Transaction
from repro.topology.builders import build_paper_figure1_tree
from repro.topology.domain import Domain
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.micropayment import (
    MicropaymentApplication,
    account_key,
    client_account_key,
    volume_key,
)
from repro.workloads.ridesharing import RidesharingApplication, driver_hours_key

D11, D12 = DomainId(1, 1), DomainId(1, 2)


class TestWorkloadGenerator:
    def _generate(self, **kwargs):
        hierarchy = build_paper_figure1_tree()
        config = WorkloadConfig(num_transactions=kwargs.pop("n", 200), **kwargs)
        return WorkloadGenerator(hierarchy, config, num_clients=kwargs.pop("clients", 8)).generate()

    def test_transaction_count_matches_config(self):
        workload = self._generate(n=150)
        assert workload.num_transactions == 150

    def test_pure_internal_workload(self):
        workload = self._generate(cross_domain_ratio=0.0, mobile_ratio=0.0)
        assert workload.kind_counts() == {TransactionKind.INTERNAL: 200}

    def test_cross_domain_ratio_is_respected(self):
        workload = self._generate(cross_domain_ratio=0.5)
        counts = workload.kind_counts()
        fraction = counts.get(TransactionKind.CROSS_DOMAIN, 0) / 200
        assert 0.35 < fraction < 0.65

    def test_full_cross_domain_workload(self):
        workload = self._generate(cross_domain_ratio=1.0)
        assert workload.kind_counts()[TransactionKind.CROSS_DOMAIN] == 200

    def test_mobile_ratio_marks_clients_not_transactions(self):
        workload = self._generate(mobile_ratio=0.5)
        counts = workload.kind_counts()
        # Half the clients are mobile, and load is dealt round-robin.
        fraction = counts.get(TransactionKind.MOBILE, 0) / 200
        assert 0.4 < fraction < 0.6

    def test_mobile_excursions_stay_in_one_remote_domain(self):
        workload = self._generate(mobile_ratio=1.0, mobile_txns_per_excursion=10)
        by_client = {}
        for tx in workload.transactions:
            by_client.setdefault(tx.client, []).append(tx)
        for transactions in by_client.values():
            first_excursion = transactions[:10]
            remotes = {t.remote_domain for t in first_excursion}
            assert len(remotes) == 1
            assert remotes.pop() != None

    def test_mobile_transactions_never_target_the_home_domain(self):
        workload = self._generate(mobile_ratio=1.0)
        for tx in workload.transactions:
            assert tx.remote_domain != tx.home_domain

    def test_cross_domain_involves_the_clients_local_domain(self):
        workload = self._generate(cross_domain_ratio=1.0)
        hierarchy = build_paper_figure1_tree()
        for tx in workload.transactions:
            local = hierarchy.parent_height1_of_leaf(tx.client.home).id
            assert local in tx.involved_domains

    def test_contention_concentrates_on_hot_accounts(self):
        hot = self._generate(contention_ratio=1.0, hot_accounts_per_domain=2)
        cold = self._generate(contention_ratio=0.0, hot_accounts_per_domain=2)
        hot_keys = {t.payload["sender"] for t in hot.transactions}
        cold_keys = {t.payload["sender"] for t in cold.transactions}
        assert len(hot_keys) < len(cold_keys)

    def test_deterministic_given_seed(self):
        a = self._generate(seed=5)
        b = self._generate(seed=5)
        assert [t.tid for t in a.transactions] == [t.tid for t in b.transactions]
        assert [t.payload for t in a.transactions] == [t.payload for t in b.transactions]

    def test_clients_registered_with_application(self):
        workload = self._generate(mobile_ratio=1.0)
        application = MicropaymentApplication(accounts_per_domain=8)
        workload.configure_application(application)
        domain = Domain(id=D11)
        state = StateStore()
        application.initialize_domain(domain, state)
        homed_here = [c for c, home in workload.clients.items() if home == D11]
        for client in homed_here:
            assert state.has_account(client_account_key(client))

    def test_invalid_client_count_rejected(self):
        hierarchy = build_paper_figure1_tree()
        with pytest.raises(WorkloadError):
            WorkloadGenerator(hierarchy, WorkloadConfig(), num_clients=0)


class TestMicropaymentApplication:
    def _app_and_state(self):
        application = MicropaymentApplication(accounts_per_domain=4, initial_balance=100.0)
        state = StateStore()
        application.initialize_domain(Domain(id=D11), state)
        return application, state

    def _transfer(self, sender, recipient, amount):
        return Transaction(
            tid=TransactionId(number=1),
            kind=TransactionKind.INTERNAL,
            involved_domains=(D11,),
            payload={"op": "transfer", "sender": sender, "recipient": recipient, "amount": amount},
        )

    def test_initialize_creates_accounts_and_volume(self):
        _, state = self._app_and_state()
        assert state.balance(account_key(D11, 0)) == 100.0
        assert state.get(volume_key(D11)) == 0.0

    def test_local_transfer(self):
        application, state = self._app_and_state()
        result = application.execute(
            self._transfer(account_key(D11, 0), account_key(D11, 1), 30.0), state, D11
        )
        assert result.success
        assert state.balance(account_key(D11, 0)) == 70.0
        assert state.balance(account_key(D11, 1)) == 130.0
        assert state.get(volume_key(D11)) == 30.0

    def test_cross_domain_transfer_applies_local_side_only(self):
        application, state = self._app_and_state()
        result = application.execute(
            self._transfer(account_key(D11, 0), account_key(D12, 1), 25.0), state, D11
        )
        assert result.success
        assert state.balance(account_key(D11, 0)) == 75.0
        assert not state.has_account(account_key(D12, 1))

    def test_insufficient_balance_fails_cleanly(self):
        application, state = self._app_and_state()
        result = application.execute(
            self._transfer(account_key(D11, 0), account_key(D11, 1), 1_000.0), state, D11
        )
        assert not result.success
        assert state.balance(account_key(D11, 0)) == 100.0

    def test_unknown_operation_rejected(self):
        application, state = self._app_and_state()
        tx = Transaction(
            tid=TransactionId(number=2),
            kind=TransactionKind.INTERNAL,
            involved_domains=(D11,),
            payload={"op": "mint"},
        )
        assert not application.execute(tx, state, D11).success

    def test_abstraction_forwards_only_volume(self):
        application, _ = self._app_and_state()
        abstract = application.abstraction()({
            account_key(D11, 0): 70.0,
            volume_key(D11): 30.0,
        })
        assert abstract == {volume_key(D11): 30.0}

    def test_client_state_roundtrip(self):
        client = ClientId(home=DomainId(0, 1), index=1)
        application = MicropaymentApplication(accounts_per_domain=2)
        application.register_client(client, D11)
        state = StateStore()
        application.initialize_domain(Domain(id=D11), state)
        snapshot = application.client_state(client, state)
        assert snapshot == {client_account_key(client): 10_000.0}
        other = StateStore()
        application.apply_client_state(client, snapshot, other)
        assert other.balance(client_account_key(client)) == 10_000.0


class TestRidesharingApplication:
    def _ride(self, driver, hours, number=1):
        return Transaction(
            tid=TransactionId(number=number),
            kind=TransactionKind.INTERNAL,
            involved_domains=(D11,),
            payload={"op": "ride", "driver": driver, "hours": hours, "fare": 12.0},
        )

    def test_rides_accumulate_hours_and_earnings(self):
        application = RidesharingApplication()
        state = StateStore()
        application.initialize_domain(Domain(id=D11), state)
        for number in range(1, 4):
            result = application.execute(self._ride("alice", 2.0, number), state, D11)
            assert result.success
        assert state.get(driver_hours_key("alice")) == 6.0
        assert state.get("rides:D11") == 3

    def test_hour_cap_is_enforced(self):
        application = RidesharingApplication(hour_cap=5.0)
        state = StateStore()
        application.initialize_domain(Domain(id=D11), state)
        assert application.execute(self._ride("bob", 4.0, 1), state, D11).success
        refused = application.execute(self._ride("bob", 2.0, 2), state, D11)
        assert not refused.success
        assert state.get(driver_hours_key("bob")) == 4.0

    def test_abstraction_forwards_hours_not_earnings(self):
        application = RidesharingApplication()
        abstract = application.abstraction()({
            driver_hours_key("alice"): 6.0,
            "earnings:alice": 72.0,
            "rides:D11": 3,
        })
        assert driver_hours_key("alice") in abstract
        assert "earnings:alice" not in abstract

    def test_regulation_query_over_summarized_view(self):
        from repro.ledger.abstraction import SummarizedView

        application = RidesharingApplication(hour_cap=40.0)
        view = SummarizedView(DomainId(2, 1))
        view.merge_delta(D11, {driver_hours_key("alice"): 38.0}, 1)
        view.merge_delta(D12, {driver_hours_key("alice"): 44.0}, 1)
        over = application.drivers_over_cap(view)
        assert "alice" in over


class TestKeyValueApplication:
    def test_put_and_get(self):
        application = KeyValueApplication()
        state = StateStore()
        put = Transaction(
            tid=TransactionId(number=1),
            kind=TransactionKind.INTERNAL,
            involved_domains=(D11,),
            payload={"op": "put", "key": "k", "value": 3},
        )
        get = Transaction(
            tid=TransactionId(number=2),
            kind=TransactionKind.INTERNAL,
            involved_domains=(D11,),
            payload={"op": "get", "key": "k"},
        )
        assert application.execute(put, state, D11).success
        assert application.execute(get, state, D11).result == {"value": 3}
