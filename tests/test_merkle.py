"""Unit and property tests for Merkle trees."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.merkle import EMPTY_ROOT, MerkleTree
from repro.errors import CryptoError


class TestMerkleTree:
    def test_empty_tree_has_sentinel_root(self):
        assert MerkleTree([]).root == EMPTY_ROOT

    def test_single_leaf_root_differs_from_leaf(self):
        tree = MerkleTree([b"leaf"])
        assert tree.root != b"leaf"
        assert len(tree) == 1

    def test_root_depends_on_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_proof_verifies_against_root(self):
        leaves = [bytes([i]) * 4 for i in range(7)]
        tree = MerkleTree(leaves)
        for index in range(len(leaves)):
            assert tree.proof(index).verify(tree.root)

    def test_proof_fails_against_other_root(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        other = MerkleTree([b"a", b"b", b"d"])
        assert not tree.proof(2).verify(other.root)

    def test_proof_out_of_range_rejected(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(CryptoError):
            tree.proof(5)

    def test_proof_on_empty_tree_rejected(self):
        with pytest.raises(CryptoError):
            MerkleTree([]).proof(0)

    def test_root_of_shortcut_matches_full_tree(self):
        leaves = [b"x", b"y", b"z"]
        assert MerkleTree.root_of(leaves) == MerkleTree(leaves).root

    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=32))
    def test_every_leaf_provable(self, leaves):
        tree = MerkleTree(leaves)
        for index in range(len(leaves)):
            assert tree.proof(index).verify(tree.root)

    @given(
        st.lists(st.binary(min_size=1, max_size=8), min_size=2, max_size=16),
        st.data(),
    )
    def test_tampering_with_a_leaf_changes_the_root(self, leaves, data):
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        tampered = list(leaves)
        tampered[index] = tampered[index] + b"!"
        assert MerkleTree(leaves).root != MerkleTree(tampered).root
