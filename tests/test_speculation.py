"""Speculative out-of-order execution with in-order commit (the PR 8 tentpole).

Five halves, mirroring the sharding test layout:

* :class:`Batch` caches its declared keys and speculability at construction;
* :class:`DecisionLog` unit behavior — ordered release, gap bookkeeping,
  payload lookups, and the speculation window (marks and watermarks);
* ``speculation=False`` stays bit-identical to the pre-change goldens;
* randomized differential — speculation on vs off must agree outcome for
  outcome on fault-free scenarios (no stalls, so nothing to speculate past);
* hostile runs with speculation armed pass full invariant checking, and the
  speculation-safety invariant *catches* forged wrong-speculation traces
  (otherwise "passing" means nothing).
"""

import hashlib
import json
from dataclasses import dataclass

import pytest

from types import SimpleNamespace

from repro.common.types import DomainId, FailureModel, TransactionKind
from repro.consensus.base import Batch, DecisionLog
from repro.faults import InvariantChecker, TraceRecorder
from repro.faults.plan import FaultAction, FaultPlan
from repro.ledger.state import StateStore
from repro.ledger.transaction import Transaction
from repro.scenarios import ScenarioRunner, registry
from tests.conftest import cross_transfer, internal_transfer, make_tid
from tests.test_consensus import _Bus, _FakeHost, _make_domain
from tests.test_sharding import PRE_SHARDING_GOLDENS

D11 = DomainId(1, 1)
D12 = DomainId(1, 2)


@dataclass(frozen=True)
class _Entry:
    """A minimal consensus submission: just the transaction it carries."""

    transaction: Transaction


# ---------------------------------------------------------------------------
# Batch: declared keys and speculability are cached at construction
# ---------------------------------------------------------------------------


class TestBatchFootprint:
    def test_declared_keys_cached_and_deduplicated(self):
        a = internal_transfer(D11, 0, 1)
        b = internal_transfer(D11, 1, 2)
        batch = Batch((_Entry(a), _Entry(b)))
        assert batch.speculable
        expected = tuple(
            dict.fromkeys(
                a.read_keys + a.write_keys + b.read_keys + b.write_keys
            )
        )
        assert batch.declared_keys == expected
        # The attributes are plain cached tuples/bools, not recomputed views.
        assert batch.declared_keys is batch.declared_keys

    def test_cross_domain_entry_disables_speculation(self):
        a = internal_transfer(D11)
        x = cross_transfer((D11, D12))
        batch = Batch((_Entry(a), _Entry(x)))
        assert not batch.speculable
        # The cross entry's keys still count toward the declared footprint.
        for key in x.read_keys:
            assert key in batch.declared_keys

    def test_opaque_entry_disables_speculation(self):
        batch = Batch((_Entry(internal_transfer(D11)), "opaque-payload"))
        assert not batch.speculable


# ---------------------------------------------------------------------------
# DecisionLog: ordered release, gaps, and the speculation window
# ---------------------------------------------------------------------------


class TestDecisionLog:
    def _log(self):
        delivered = []
        log = DecisionLog(lambda slot, payload: delivered.append((slot, payload)))
        return log, delivered

    def test_in_order_decisions_deliver_immediately(self):
        log, delivered = self._log()
        log.record(1, "a")
        log.record(2, "b")
        assert delivered == [(1, "a"), (2, "b")]
        assert log.delivered_count == 2
        assert log.commit_watermark == 2
        assert log.next_slot_to_deliver == 3
        assert not log.has_gap
        assert log.pending_slots() == ()

    def test_out_of_order_slots_wait_for_the_gap(self):
        log, delivered = self._log()
        log.record(3, "c")
        log.record(2, "b")
        assert delivered == []
        assert log.has_gap
        assert log.pending_slots() == (2, 3)
        assert log.is_decided(2) and log.is_decided(3)
        assert not log.is_decided(1)
        log.record(1, "a")
        assert delivered == [(1, "a"), (2, "b"), (3, "c")]
        assert not log.has_gap
        assert log.delivered_count == 3

    def test_record_is_idempotent(self):
        log, delivered = self._log()
        log.record(1, "a")
        log.record(1, "a-again")
        log.record(2, "b")
        log.record(2, "b-again")
        assert delivered == [(1, "a"), (2, "b")]

    def test_payload_of_boundaries(self):
        log, _ = self._log()
        log.record(1, "a")
        log.record(3, "c")
        assert log.payload_of(0) is None
        assert log.payload_of(1) == "a"  # delivered: indexed lookup
        assert log.payload_of(2) is None  # undecided gap
        assert log.payload_of(3) == "c"  # decided, undelivered
        assert log.payload_of(4) is None

    def test_speculation_window_marks_and_watermarks(self):
        log, _ = self._log()
        log.record(1, "a")
        log.record(3, "c")
        log.record(4, "d")
        assert log.spec_watermark == log.commit_watermark == 1
        log.mark_speculated(3)
        log.mark_speculated(4)
        assert log.is_speculated(3) and log.is_speculated(4)
        assert log.speculated_slots == (3, 4)
        assert log.spec_watermark == 4
        log.unmark_speculated(4)
        assert log.speculated_slots == (3,)
        assert log.spec_watermark == 3
        log.unmark_speculated(3)
        log.unmark_speculated(3)  # unmarking twice is harmless
        assert log.speculated_slots == ()
        assert log.spec_watermark == log.commit_watermark == 1


# ---------------------------------------------------------------------------
# Engine white-box: speculate-then-commit and the rollback path
# ---------------------------------------------------------------------------


class _SpecHost(_FakeHost):
    """A consensus host with a state store and the speculation hooks.

    ``speculative_execute`` writes a per-transaction marker into the store
    (capturing per-key undo exactly like the real node layer), so the tests
    can observe out-of-order application and its unwinding directly.
    """

    def __init__(self, domain, index, bus):
        self.state = StateStore(name=f"spec-host-{index}", shards=8)
        self.config = SimpleNamespace(
            speculation=True, batch_size=1, batch_timeout_ms=1.0
        )
        self.unwound = []
        super().__init__(domain, index, bus)

    def speculative_execute(self, transaction):
        undo = {}
        for key in transaction.write_keys:
            undo[key] = (key in self.state, self.state.get(key))
            self.state.put(key, f"spec:{transaction.tid.name}")
        return undo

    def speculative_unwind(self, transaction, undo):
        self.unwound.append(transaction.tid)
        for key, (existed, old_value) in undo.items():
            if existed:
                self.state.put(key, old_value)
            else:
                self.state.remove(key)


def _key_tx(domain_id, key):
    return Transaction(
        tid=make_tid(),
        kind=TransactionKind.INTERNAL,
        involved_domains=(domain_id,),
        payload={"op": "set", "key": key},
        read_keys=(key,),
        write_keys=(key,),
    )


def _seed_pending(engine, slot, payload):
    """Plant ``payload`` as the engine's best-known payload of an undecided
    slot, whatever replica-side store the engine keeps it in."""
    for attr in ("_payloads", "_accepted_payload", "_proposals"):
        store = getattr(engine, attr, None)
        if store is not None:
            store[slot] = payload


@pytest.mark.parametrize(
    "model", [FailureModel.CRASH, FailureModel.BYZANTINE]
)
class TestSpeculativeEngine:
    def _host(self, model):
        bus = _Bus()
        domain = _make_domain(model)
        host = _SpecHost(domain, 1, bus)  # a replica: decisions come to it
        state = host.state
        keys = iter("abcdefghijklmnop")
        first = next(keys)
        second = next(
            k for k in keys if state.shards_of((k,)) != state.shards_of((first,))
        )
        return host, domain.id, first, second

    def test_disjoint_slot_speculates_and_commits_in_order(self, model):
        host, domain_id, key_a, key_b = self._host(model)
        engine = host.engine
        batch1 = Batch((_Entry(_key_tx(domain_id, key_a)),))
        batch2 = Batch((_Entry(_key_tx(domain_id, key_b)),))
        _seed_pending(engine, 1, batch1)
        engine._record_decision(2, batch2)
        # Slot 2 ran out of order: state applied, delivery still held back.
        assert engine._log.is_speculated(2)
        assert host.state.get(key_b) is not None
        assert host.decisions == []
        engine._record_decision(1, batch1)
        # The gap closed: both slots delivered in order, speculation resolved.
        assert [slot for slot, _ in host.decisions] == [1, 2]
        assert not engine._log.is_speculated(2)
        assert engine._spec_records == {}
        assert host.unwound == []

    def test_overlapping_decided_payload_rolls_the_speculation_back(self, model):
        host, domain_id, key_a, key_b = self._host(model)
        engine = host.engine
        pending = Batch((_Entry(_key_tx(domain_id, key_a)),))
        speculated = Batch((_Entry(_key_tx(domain_id, key_b)),))
        _seed_pending(engine, 1, pending)
        engine._record_decision(2, speculated)
        assert engine._log.is_speculated(2)
        # Slot 1 decides with a DIFFERENT payload than the scan saw (an
        # equivocation outcome) that overlaps the speculated footprint.
        decided = Batch((_Entry(_key_tx(domain_id, key_b)),))
        engine._record_decision(1, decided)
        # The speculation was unwound before in-order delivery took over.
        assert host.unwound == [speculated.entries[0].transaction.tid]
        assert host.state.get(key_b) != (
            f"spec:{speculated.entries[0].transaction.tid.name}"
        )
        assert [slot for slot, _ in host.decisions] == [1, 2]
        assert engine._spec_records == {}
        assert not engine._log.is_speculated(2)

    def test_overlapping_pending_footprint_blocks_speculation(self, model):
        host, domain_id, key_a, _ = self._host(model)
        engine = host.engine
        pending = Batch((_Entry(_key_tx(domain_id, key_a)),))
        overlapping = Batch((_Entry(_key_tx(domain_id, key_a)),))
        _seed_pending(engine, 1, pending)
        engine._record_decision(2, overlapping)
        assert not engine._log.is_speculated(2)
        assert host.state.get(key_a) is None

    def test_unknown_pending_payload_blocks_speculation(self, model):
        host, domain_id, _, key_b = self._host(model)
        engine = host.engine
        batch2 = Batch((_Entry(_key_tx(domain_id, key_b)),))
        # No pending payload seeded for slot 1: its footprint is unknown
        # (universal), so nothing past it may run early.
        engine._record_decision(2, batch2)
        assert not engine._log.is_speculated(2)
        assert host.state.get(key_b) is None


# ---------------------------------------------------------------------------
# Golden regression: speculation=False is bit-identical to the pre-change seed
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PRE_SHARDING_GOLDENS))
def test_speculation_off_matches_pre_change_goldens(name):
    """The explicit ``speculation=False`` path reproduces the PR 7 digests."""
    golden = PRE_SHARDING_GOLDENS[name]
    scenario = registry.get(name).with_overrides(
        state_shards=1, execution_lanes=1, speculation=False, **golden["overrides"]
    )
    run = ScenarioRunner().execute(scenario)
    result_digest = hashlib.sha256(
        json.dumps(run.run().to_dict(), sort_keys=True).encode()
    ).hexdigest()
    trace_digest = hashlib.sha256(run.trace.to_json().encode()).hexdigest()
    assert result_digest == golden["result_sha256"]
    assert trace_digest == golden["trace_sha256"]
    assert run.deployment.simulator.events_executed == golden["events_executed"]


# ---------------------------------------------------------------------------
# Randomized differential: speculation on == off on fault-free runs
# ---------------------------------------------------------------------------

#: ~10 seeds spread across an internal-heavy figure, the wide-area figure,
#: and the batched+sharded sweep point (wide batches never speculate; the
#: knob must still be a no-op there).
_DIFFERENTIAL_CASES = (
    [("fig07a", seed) for seed in (2023, 2024, 2025)]
    + [("fig10a", seed) for seed in (2023, 2024)]
    + [("shard-sweep-s016", seed) for seed in (2023, 2024, 2025, 2026, 2027)]
)


@pytest.mark.parametrize("name,seed", _DIFFERENTIAL_CASES)
def test_speculation_on_and_off_agree(name, seed):
    """Without decision gaps there is nothing to speculate past, so arming
    speculation must not change any outcome: same results, same balances,
    and the armed run passes full invariant checking."""
    base = registry.get(name).with_overrides(
        num_transactions=24, num_clients=4, seed=seed
    )
    runner = ScenarioRunner()
    off = runner.execute(base)
    on = runner.execute(base.with_overrides(speculation=True))
    assert json.dumps(off.run().to_dict(), sort_keys=True) == json.dumps(
        on.run().to_dict(), sort_keys=True
    )
    for domain in off.deployment.hierarchy.height1_domains():
        off_state = off.deployment.state_of(domain.id)
        on_state = on.deployment.state_of(domain.id)
        assert on_state.snapshot() == off_state.snapshot()
    on.check_invariants()


# ---------------------------------------------------------------------------
# Adversity: hostile runs with speculation armed stay invariant-clean
# ---------------------------------------------------------------------------


class TestSpeculationUnderAdversity:
    @pytest.mark.parametrize("name", ["byz-equivocation", "byz-partition-flap"])
    def test_hostile_runs_pass_invariants_with_speculation_on(self, name):
        scenario = registry.get(name).with_overrides(
            speculation=True, state_shards=64, batch_size=4, batch_timeout_ms=2.0
        )
        run = ScenarioRunner(check_invariants=True).execute(scenario)
        assert run.summary is not None
        assert run.summary.pending == 0
        # The fault plan actually fired: its arming left trace evidence.
        assert run.trace.events_with_prefix("fault:")

    @pytest.mark.parametrize(
        "label,extra",
        [
            (
                "equivocate",
                (
                    FaultAction(
                        kind="equivocate", at_ms=10.0, domain="D11", until_ms=800.0
                    ),
                ),
            ),
            (
                "crash",
                (
                    FaultAction(kind="crash", at_ms=100.0, domain="D12", node=2),
                    FaultAction(kind="recover", at_ms=500.0, domain="D12", node=2),
                ),
            ),
        ],
    )
    def test_adversary_mid_speculation_stays_invariant_clean(self, label, extra):
        """Stalls keep opening gaps (so speculation genuinely fires) while the
        adversary equivocates or crashes nodes mid-speculation."""
        base = registry.get("pipeline-sweep-on").with_overrides(
            num_transactions=120, num_clients=24
        )
        plan = FaultPlan(
            name=f"pipeline-{label}", actions=base.fault_plan.actions + extra
        )
        run = ScenarioRunner(check_invariants=True).execute(
            base.with_overrides(name=f"pipeline-{label}", fault_plan=plan)
        )
        assert run.summary is not None
        assert run.summary.pending == 0
        assert run.trace.events("spec:deliver"), "speculation never fired"
        # Every speculation resolved: commits + rollbacks account for them.
        delivers = len(run.trace.events("spec:deliver"))
        resolved = len(run.trace.events("spec:commit")) + len(
            run.trace.events("spec:rollback")
        )
        assert resolved == delivers


# ---------------------------------------------------------------------------
# Checker self-tests: forged wrong-speculation traces must be caught
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def spec_run():
    """One executed, invariant-checked speculative run (stalled slots force
    real spec events), shared by the self-tests below."""
    scenario = registry.get("pipeline-sweep-on").with_overrides(
        num_transactions=60, num_clients=12
    )
    run = ScenarioRunner().execute(scenario)
    report = run.check_invariants()
    assert report.ok
    assert run.trace.events_with_prefix("spec:"), "speculation never fired"
    return run


class TestSpeculationSafetySelfTest:
    """Forge spec traces against a real deployment; expect violations."""

    def _forged(self, run):
        deployment = run.deployment
        domain = deployment.hierarchy.height1_domains()[0]
        node = deployment.nodes_of(domain.id)[0].address
        return deployment, domain.id.name, node, TraceRecorder()

    def test_real_speculative_run_passes_the_safety_check(self, spec_run):
        report = InvariantChecker(
            spec_run.deployment, trace=spec_run.trace
        ).check()
        assert "speculation-safety" in report.checks_run
        assert not report.of("speculation-safety")

    def test_double_speculative_delivery_is_detected(self, spec_run):
        deployment, domain, node, trace = self._forged(spec_run)
        trace.record("spec:deliver", at_ms=1.0, domain=domain, node=node, slot=4)
        trace.record("spec:deliver", at_ms=2.0, domain=domain, node=node, slot=4)
        report = InvariantChecker(deployment, trace=trace).check()
        assert any(
            "without a rollback" in v.detail
            for v in report.of("speculation-safety")
        )

    def test_rollback_without_open_speculation_is_detected(self, spec_run):
        deployment, domain, node, trace = self._forged(spec_run)
        trace.record("spec:rollback", at_ms=1.0, domain=domain, node=node, slot=4)
        report = InvariantChecker(deployment, trace=trace).check()
        assert any(
            "rollback without an open speculation" in v.detail
            for v in report.of("speculation-safety")
        )

    def test_commit_without_open_speculation_is_detected(self, spec_run):
        deployment, domain, node, trace = self._forged(spec_run)
        trace.record("spec:commit", at_ms=1.0, domain=domain, node=node, slot=4)
        report = InvariantChecker(deployment, trace=trace).check()
        assert any(
            "commit without an open speculation" in v.detail
            for v in report.of("speculation-safety")
        )

    def test_rollback_after_in_order_delivery_is_detected(self, spec_run):
        deployment, domain, node, trace = self._forged(spec_run)
        trace.record("spec:deliver", at_ms=1.0, domain=domain, node=node, slot=4)
        trace.record("batch-decide", at_ms=2.0, domain=domain, node=node, slot=4)
        trace.record("spec:rollback", at_ms=3.0, domain=domain, node=node, slot=4)
        report = InvariantChecker(deployment, trace=trace).check()
        assert any(
            "after the slot's in-order delivery" in v.detail
            for v in report.of("speculation-safety")
        )

    def test_tampered_replica_state_fails_the_replay(self, spec_run):
        deployment, domain, node_address, trace = self._forged(spec_run)
        # A legal (deliver, commit) pair arms the check without exempting
        # any node from the serial-replay comparison.
        trace.record(
            "spec:deliver", at_ms=1.0, domain=domain, node=node_address, slot=4
        )
        trace.record(
            "spec:commit", at_ms=2.0, domain=domain, node=node_address, slot=4
        )
        target = deployment.nodes_of(
            deployment.hierarchy.height1_domains()[0].id
        )[1]
        key = sorted(target.state.snapshot())[0]
        original = target.state.get(key)
        try:
            target.state.put(key, original + 777.0)
            report = InvariantChecker(deployment, trace=trace).check()
            assert any(
                "serial in-order replay" in v.detail
                for v in report.of("speculation-safety")
            )
        finally:
            target.state.put(key, original)

    def test_dangling_speculation_exempts_only_that_node(self, spec_run):
        deployment, domain, node_address, trace = self._forged(spec_run)
        # An unresolved speculation on one node: its state legitimately holds
        # uncommitted effects, so tampering with it must NOT be flagged...
        trace.record(
            "spec:deliver", at_ms=1.0, domain=domain, node=node_address, slot=9
        )
        dangling = deployment.nodes_of(
            deployment.hierarchy.height1_domains()[0].id
        )[0]
        assert dangling.address == node_address
        key = sorted(dangling.state.snapshot())[0]
        original = dangling.state.get(key)
        try:
            dangling.state.put(key, original + 777.0)
            report = InvariantChecker(deployment, trace=trace).check()
            assert not any(
                dangling.address in v.detail
                for v in report.of("speculation-safety")
            )
        finally:
            dangling.state.put(key, original)
