"""Unit and property tests for domains, the hierarchy, LCA, and placements."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import DomainSpec, HierarchySpec
from repro.common.types import DomainId, FailureModel
from repro.errors import ConfigurationError, TopologyError, UnknownDomainError
from repro.topology.builders import (
    build_flat_domains,
    build_paper_figure1_tree,
    build_tree,
)
from repro.topology.domain import Domain
from repro.topology.hierarchy import Hierarchy
from repro.topology.regions import (
    place_nearby_eu,
    place_single_region,
    place_wide_area,
    placement_for_profile,
)


class TestDomain:
    def test_crash_domain_sizes(self):
        domain = Domain(id=DomainId(1, 1), failure_model=FailureModel.CRASH, faults=2)
        assert len(domain.node_ids) == 5
        assert domain.quorum == 3
        assert domain.certificate_size == 1

    def test_byzantine_domain_sizes(self):
        domain = Domain(id=DomainId(2, 1), failure_model=FailureModel.BYZANTINE, faults=1)
        assert len(domain.node_ids) == 4
        assert domain.quorum == 3
        assert domain.certificate_size == 3

    def test_undersized_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            Domain(id=DomainId(1, 1), faults=2, num_nodes=3)

    def test_leaf_domain_has_no_servers(self):
        leaf = Domain(id=DomainId(0, 1), faults=0)
        assert leaf.is_leaf
        assert leaf.node_ids == ()

    def test_primary_rotation(self):
        domain = Domain(id=DomainId(1, 1), faults=1)
        assert domain.primary == domain.node_ids[0]
        assert domain.primary_for_view(1) == domain.node_ids[1]
        assert domain.primary_for_view(3) == domain.node_ids[0]


class TestFigure1Tree:
    def test_paper_tree_has_eleven_domains(self, figure1_hierarchy):
        assert len(figure1_hierarchy) == 11
        assert len(figure1_hierarchy.height1_domains()) == 4
        assert len(figure1_hierarchy.leaf_domains()) == 4
        assert len(figure1_hierarchy.domains_at_height(2)) == 2
        assert figure1_hierarchy.root.height == 3

    def test_every_leaf_hangs_off_a_height1_domain(self, figure1_hierarchy):
        for leaf in figure1_hierarchy.leaf_domains():
            parent = figure1_hierarchy.parent_height1_of_leaf(leaf.id)
            assert parent.height == 1

    def test_lca_of_siblings_is_their_parent(self, figure1_hierarchy):
        lca = figure1_hierarchy.lowest_common_ancestor([DomainId(1, 1), DomainId(1, 2)])
        assert lca.id == DomainId(2, 1)

    def test_lca_of_cousins_is_the_root(self, figure1_hierarchy):
        lca = figure1_hierarchy.lowest_common_ancestor([DomainId(1, 1), DomainId(1, 3)])
        assert lca.id == figure1_hierarchy.root.id

    def test_lca_of_three_domains(self, figure1_hierarchy):
        lca = figure1_hierarchy.lowest_common_ancestor(
            [DomainId(1, 1), DomainId(1, 2), DomainId(1, 4)]
        )
        assert lca.id == figure1_hierarchy.root.id

    def test_lca_of_single_domain_is_itself(self, figure1_hierarchy):
        assert (
            figure1_hierarchy.lowest_common_ancestor([DomainId(1, 2)]).id
            == DomainId(1, 2)
        )

    def test_path_between_crosses_the_lca(self, figure1_hierarchy):
        path = [d.id for d in figure1_hierarchy.path_between(DomainId(1, 1), DomainId(1, 2))]
        assert path == [DomainId(1, 1), DomainId(2, 1), DomainId(1, 2)]

    def test_hop_distance(self, figure1_hierarchy):
        assert figure1_hierarchy.hop_distance(DomainId(1, 1), DomainId(1, 2)) == 2
        assert figure1_hierarchy.hop_distance(DomainId(1, 1), DomainId(1, 3)) == 4

    def test_lca_minimises_total_distance(self, figure1_hierarchy):
        """The LCA is the best coordinator choice (the paper's placement claim)."""
        participants = [DomainId(1, 1), DomainId(1, 2)]
        lca = figure1_hierarchy.lowest_common_ancestor(participants)
        lca_distance = figure1_hierarchy.total_distance_from(lca.id, participants)
        for candidate in figure1_hierarchy.all_domains():
            if candidate.height >= 2:
                assert (
                    figure1_hierarchy.total_distance_from(candidate.id, participants)
                    >= lca_distance
                )

    def test_descendants_and_ancestors(self, figure1_hierarchy):
        root = figure1_hierarchy.root.id
        descendants = {d.id for d in figure1_hierarchy.descendants_of(root)}
        assert len(descendants) == 10
        ancestors = [d.id for d in figure1_hierarchy.ancestors_of(DomainId(1, 1))]
        assert ancestors == [DomainId(2, 1), root]
        assert figure1_hierarchy.is_ancestor(root, DomainId(0, 1))

    def test_height1_descendants_of_height2(self, figure1_hierarchy):
        ids = {d.id for d in figure1_hierarchy.height1_descendants_of(DomainId(2, 2))}
        assert ids == {DomainId(1, 3), DomainId(1, 4)}

    def test_describe_mentions_every_domain(self, figure1_hierarchy):
        text = figure1_hierarchy.describe()
        for domain in figure1_hierarchy.all_domains():
            assert domain.name in text


class TestHierarchyValidation:
    def test_duplicate_domain_rejected(self):
        hierarchy = Hierarchy()
        hierarchy.add_domain(Domain(id=DomainId(2, 1)))
        with pytest.raises(TopologyError):
            hierarchy.add_domain(Domain(id=DomainId(2, 1)))

    def test_second_root_rejected(self):
        hierarchy = Hierarchy()
        hierarchy.add_domain(Domain(id=DomainId(2, 1)))
        with pytest.raises(TopologyError):
            hierarchy.add_domain(Domain(id=DomainId(2, 2)), parent=None)

    def test_child_height_must_be_parent_minus_one(self):
        hierarchy = Hierarchy()
        hierarchy.add_domain(Domain(id=DomainId(3, 1)))
        with pytest.raises(TopologyError):
            hierarchy.add_domain(Domain(id=DomainId(1, 1)), parent=DomainId(3, 1))

    def test_unknown_parent_rejected(self):
        hierarchy = Hierarchy()
        hierarchy.add_domain(Domain(id=DomainId(2, 1)))
        with pytest.raises(UnknownDomainError):
            hierarchy.add_domain(Domain(id=DomainId(1, 1)), parent=DomainId(2, 9))

    def test_unknown_domain_lookup(self):
        hierarchy = build_paper_figure1_tree()
        with pytest.raises(UnknownDomainError):
            hierarchy.domain(DomainId(1, 9))

    def test_lca_of_empty_set_rejected(self):
        with pytest.raises(TopologyError):
            build_paper_figure1_tree().lowest_common_ancestor([])


class TestBuilders:
    @given(levels=st.integers(min_value=2, max_value=5), branching=st.integers(min_value=1, max_value=3))
    def test_tree_shape_matches_spec(self, levels, branching):
        spec = HierarchySpec(levels=levels, branching=branching)
        hierarchy = build_tree(spec)
        assert len(hierarchy.height1_domains()) == spec.num_height1_domains
        hierarchy.validate()

    def test_per_domain_overrides_apply(self):
        override = DomainSpec(failure_model=FailureModel.BYZANTINE, faults=2)
        hierarchy = build_paper_figure1_tree(per_domain={"D21": override})
        assert hierarchy.domain(DomainId(2, 1)).failure_model is FailureModel.BYZANTINE
        assert len(hierarchy.domain(DomainId(2, 1)).node_ids) == 7

    def test_flat_topology_for_baselines(self):
        hierarchy = build_flat_domains(4)
        assert len(hierarchy.height1_domains()) == 4
        assert hierarchy.root.height == 2
        lca = hierarchy.lowest_common_ancestor([DomainId(1, 1), DomainId(1, 4)])
        assert lca.id == hierarchy.root.id

    def test_flat_topology_needs_a_domain(self):
        with pytest.raises(ConfigurationError):
            build_flat_domains(0)


class TestPlacements:
    def test_nearby_placement_regions(self):
        hierarchy = place_nearby_eu(build_paper_figure1_tree())
        regions = [d.region for d in hierarchy.height1_domains()]
        assert regions == ["FR", "MI", "LDN", "PAR"]
        assert hierarchy.root.region == "FR"

    def test_wide_area_placement_regions(self):
        hierarchy = place_wide_area(build_paper_figure1_tree())
        assert [d.region for d in hierarchy.height1_domains()] == ["TY", "HK", "VA", "OH"]
        assert sorted(d.region for d in hierarchy.domains_at_height(2)) == ["OR", "SU"]
        assert hierarchy.root.region == "CA"

    def test_leaves_follow_their_height1_domain(self):
        hierarchy = place_wide_area(build_paper_figure1_tree())
        for leaf in hierarchy.leaf_domains():
            assert leaf.region == hierarchy.parent_height1_of_leaf(leaf.id).region

    def test_single_region_placement(self):
        hierarchy = place_single_region(build_paper_figure1_tree(), region="LOCAL")
        assert {d.region for d in hierarchy.all_domains()} == {"LOCAL"}

    def test_placement_for_profile_dispatch(self):
        assert placement_for_profile(build_paper_figure1_tree(), "lan").root.region == "LOCAL"
        with pytest.raises(ConfigurationError):
            placement_for_profile(build_paper_figure1_tree(), "unknown")
