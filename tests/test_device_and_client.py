"""Tests for edge-device consensus, payment channels, and client behaviour."""

import pytest

from repro.common.types import ClientId, DomainId, TransactionId, TransactionKind
from repro.core.device import EdgeDeviceQuorum, PaymentChannel
from repro.errors import InsufficientBalanceError, TransactionError
from repro.ledger.transaction import Transaction
from repro.workloads.micropayment import account_key
from tests.conftest import internal_transfer, make_deployment

D01, D11 = DomainId(0, 1), DomainId(1, 1)
DEVICES = [ClientId(home=D01, index=i) for i in range(1, 6)]


def _leaf_tx(number):
    sender, recipient = account_key(D11, number), account_key(D11, number + 1)
    return Transaction(
        tid=TransactionId(number=number, origin=DEVICES[0]),
        kind=TransactionKind.INTERNAL,
        involved_domains=(D11,),
        payload={"op": "transfer", "sender": sender, "recipient": recipient, "amount": 1.0},
        read_keys=(sender, recipient),
        write_keys=(sender, recipient),
        client=DEVICES[0],
    )


class TestEdgeDeviceQuorum:
    def test_needs_at_least_three_devices(self):
        with pytest.raises(TransactionError):
            EdgeDeviceQuorum(D01, DEVICES[:2])

    def test_transaction_ordered_after_majority_acks(self):
        quorum = EdgeDeviceQuorum(D01, DEVICES)
        tx = _leaf_tx(1)
        quorum.propose(tx)
        assert not quorum.acknowledge(tx.tid, DEVICES[1])
        assert quorum.acknowledge(tx.tid, DEVICES[2])  # 3rd ack = majority of 5
        assert quorum.ordered_transactions() == (tx,)

    def test_unknown_device_cannot_ack(self):
        quorum = EdgeDeviceQuorum(D01, DEVICES)
        tx = _leaf_tx(1)
        quorum.propose(tx)
        with pytest.raises(TransactionError):
            quorum.acknowledge(tx.tid, ClientId(home=DomainId(0, 2), index=9))

    def test_duplicate_proposal_rejected(self):
        quorum = EdgeDeviceQuorum(D01, DEVICES)
        tx = _leaf_tx(1)
        quorum.propose(tx)
        with pytest.raises(TransactionError):
            quorum.propose(tx)

    def test_batches_contain_only_new_transactions(self):
        quorum = EdgeDeviceQuorum(D01, DEVICES)
        first, second = _leaf_tx(1), _leaf_tx(2)
        for tx in (first, second):
            quorum.propose(tx)
            quorum.acknowledge(tx.tid, DEVICES[1])
            quorum.acknowledge(tx.tid, DEVICES[2])
        batch = quorum.next_batch()
        assert batch is not None and len(batch.transactions) == 2
        assert quorum.next_batch() is None

    def test_batch_committed_by_parent_height1_domain(self):
        deployment = make_deployment()
        quorum = EdgeDeviceQuorum(D01, DEVICES)
        transactions = [_leaf_tx(n) for n in (1, 2, 3)]
        for tx in transactions:
            quorum.propose(tx)
            quorum.acknowledge(tx.tid, DEVICES[1])
            quorum.acknowledge(tx.tid, DEVICES[2])
        batch = quorum.next_batch()
        deployment.start()
        primary = deployment.primary_node_of(D11)
        # The leaf sends the agreed batch to its parent's primary (§6.1).
        deployment.network.register(
            type("LeafStub", (), {"address": "leaf", "region": primary.region,
                                  "deliver": lambda self, e: None})()
        )
        deployment.network.send("leaf", primary.address, batch)
        deployment.simulator.run(until_ms=50.0)
        deployment.stop_rounds()
        for tx in transactions:
            assert tx.tid in deployment.ledger_of(D11)


class TestPaymentChannel:
    def _channel(self):
        return PaymentChannel(
            channel_id="ch1",
            party_a=account_key(D11, 0),
            party_b=account_key(D11, 1),
            deposit_a=100.0,
            deposit_b=50.0,
        )

    def test_payments_shift_in_channel_balances(self):
        channel = self._channel()
        channel.pay(account_key(D11, 0), 30.0)
        channel.pay(account_key(D11, 1), 10.0)
        assert channel.balances == (80.0, 70.0)
        assert channel.payments_made == 2

    def test_overdraft_inside_channel_rejected(self):
        channel = self._channel()
        with pytest.raises(InsufficientBalanceError):
            channel.pay(account_key(D11, 1), 500.0)

    def test_non_member_cannot_pay(self):
        channel = self._channel()
        with pytest.raises(TransactionError):
            channel.pay("acct:D11:9", 1.0)

    def test_closed_channel_rejects_payments(self):
        channel = self._channel()
        channel.close_transaction(TransactionId(number=99), D11)
        with pytest.raises(TransactionError):
            channel.pay(account_key(D11, 0), 1.0)

    def test_open_and_close_settle_on_chain(self):
        deployment = make_deployment()
        channel = self._channel()
        client = ClientId(home=D01, index=1)
        open_tx = channel.open_transaction(TransactionId(number=500, origin=client), D11)
        open_tx = Transaction(**{**open_tx.__dict__, "client": client})
        channel.pay(account_key(D11, 0), 40.0)
        close_tx = channel.close_transaction(TransactionId(number=501, origin=client), D11)
        close_tx = Transaction(**{**close_tx.__dict__, "client": client})
        summary = deployment.run_workload([open_tx, close_tx], drain_ms=200.0)
        assert summary.committed == 2
        state = deployment.state_of(D11)
        # A paid 40 to B inside the channel; net on-chain effect after settling.
        assert state.balance(account_key(D11, 0)) == pytest.approx(1_000_000 - 40.0)
        assert state.balance(account_key(D11, 1)) == pytest.approx(1_000_000 + 40.0)


class TestClientRetransmission:
    def test_client_finishes_after_a_dropped_request(self):
        deployment = make_deployment()
        client_id = ClientId(home=D01, index=1)
        tx = internal_transfer(D11, client=client_id)
        deployment.start()
        clients = deployment.create_clients([tx], think_time_ms=0.0)
        primary = deployment.primary_node_of(D11)
        # Drop the first request by partitioning the client from the primary,
        # then heal before the retransmission timer fires: the client then
        # multicasts to every node of the domain (§4.2) and still commits.
        deployment.network.partition(client_id.name, primary.address)
        for client in clients:
            client.start()
        deployment.simulator.run(until_ms=100.0)
        deployment.network.heal(client_id.name, primary.address)
        deployment.simulator.run(until_ms=6_000.0, stop_when=lambda: clients[0].done)
        deployment.stop_rounds()
        assert clients[0].done
        assert tx.tid in deployment.ledger_of(D11)
