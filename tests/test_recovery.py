"""Durable crash recovery: WAL, checkpoints, catch-up, and the churn sweep.

Covers the durability subsystem end to end:

* :mod:`repro.recovery.wal` unit behavior — record validation, truncation
  semantics, deterministic state roots, and checkpoint certification
  (including forgeries);
* the capped exponential gap-recovery backoff in the consensus engine;
* idempotent ``crash``/``wipe``/``recover`` at the node level (traced no-ops);
* the :class:`~repro.recovery.catchup.RecoveryManager` peer rotation and
  timeout backoff when every peer is dead;
* recovery under adversity — wiping a PBFT primary mid-batch, wiping a node
  again while it is catching up, and a 10-seed durability on/off
  differential on fig07a and fig10a;
* ``time_to_rejoin_ms`` reporting on :class:`RunResult`;
* the ``recovery-safety`` invariant pass, against both real churn runs and
  hand-forged traces that must be flagged.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.consensus.base import GAP_RECOVERY_MAX_MS, GAP_RECOVERY_MS
from repro.crypto.merkle import EMPTY_ROOT
from repro.errors import RecoveryError
from repro.faults import FaultAction, FaultPlan
from repro.faults.invariants import InvariantChecker
from repro.faults.trace import TraceRecorder
from repro.recovery import (
    CATCHUP_TIMEOUT_MAX_MS,
    CATCHUP_TIMEOUT_MS,
    WalRecord,
    WriteAheadLog,
    checkpoint_digest,
    state_root_of,
)
from repro.scenarios import ScenarioRunner, registry
from repro.scenarios.runner import RunResult, materialize
from tests.conftest import internal_transfer


def _durable_scenario(**overrides):
    """A small paced scenario with durability armed (no faults by default)."""
    defaults = dict(num_transactions=48, num_clients=4)
    defaults.update(overrides)
    return registry.get("churn-sweep-nofault").with_overrides(**defaults)


def _height1_node(deployment, domain_index: int = 0, node_index: int = 1):
    domain = deployment.hierarchy.height1_domains()[domain_index]
    return deployment.nodes_of(domain.id)[node_index]


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_unknown_record_kind_is_rejected(self):
        with pytest.raises(RecoveryError, match="unknown WAL record kind"):
            WalRecord(kind="gossip", slot=1)

    def test_negative_sync_cost_is_rejected(self):
        with pytest.raises(RecoveryError, match="sync_ms"):
            WriteAheadLog("D11/n0", sync_ms=-1.0)

    def test_truncate_drops_covered_records_only(self):
        wal = WriteAheadLog("D11/n0")
        wal.append(WalRecord(kind="append", position=1, payload="e1"))
        wal.append(WalRecord(kind="commit-vote", slot=1, view=0, digest=b"a"))
        wal.append(WalRecord(kind="decide", slot=1, payload="p1"))
        wal.append(WalRecord(kind="view-vote", view=2))
        wal.append(WalRecord(kind="decide", slot=2, payload="p2"))
        wal.append(WalRecord(kind="append", position=3, payload="e3"))
        dropped = wal.truncate_through(slot=1, ledger_length=2)
        # The append at position 1, and the slot-1 vote and decide, are
        # covered by the checkpoint; the view vote, the slot-2 decide, and
        # the position-3 append survive.
        assert dropped == 3
        assert [r.kind for r in wal.records()] == ["view-vote", "decide", "append"]
        assert wal.appended_total == 6
        assert wal.truncated_total == 3
        assert len(wal) == 3

    def test_view_votes_survive_truncation_and_report_highest(self):
        wal = WriteAheadLog("D11/n0")
        assert wal.highest_view_vote() == 0
        wal.append(WalRecord(kind="view-vote", view=1))
        wal.append(WalRecord(kind="view-vote", view=3))
        wal.truncate_through(slot=10_000, ledger_length=10_000)
        assert wal.highest_view_vote() == 3


class TestStateRoot:
    def test_empty_snapshot_has_the_empty_root(self):
        assert state_root_of({}) == EMPTY_ROOT

    def test_root_is_insertion_order_independent(self):
        a = {"x": 1, "y": 2, "z": 3}
        b = {"z": 3, "x": 1, "y": 2}
        assert state_root_of(a) == state_root_of(b)

    def test_root_is_value_sensitive(self):
        assert state_root_of({"x": 1}) != state_root_of({"x": 2})


# ---------------------------------------------------------------------------
# Certified checkpoints (built by a real durable run)
# ---------------------------------------------------------------------------


class TestCheckpointCertification:
    @pytest.fixture(scope="class")
    def checkpointed_node(self):
        run = materialize(_durable_scenario(checkpoint_interval=4))
        run.run()
        for index in range(4):
            node = _height1_node(run.deployment, domain_index=index, node_index=0)
            if node.durable_checkpoint is not None:
                return node
        pytest.fail("no domain reached a checkpoint")

    def test_genuine_checkpoint_verifies(self, checkpointed_node):
        node = checkpointed_node
        checkpoint = node.durable_checkpoint
        assert checkpoint.slot % 4 == 0 and checkpoint.slot > 0
        assert checkpoint.verify(node.keystore, node.domain.node_names)

    def test_forged_snapshot_is_rejected(self, checkpointed_node):
        node = checkpointed_node
        forged = dataclasses.replace(
            node.durable_checkpoint,
            snapshot={"account:stolen": 1_000_000.0},
        )
        assert not forged.verify(node.keystore, node.domain.node_names)

    def test_missing_certificate_is_rejected(self, checkpointed_node):
        node = checkpointed_node
        bare = dataclasses.replace(node.durable_checkpoint, certificate=None)
        assert not bare.verify(node.keystore, node.domain.node_names)

    def test_certificate_bound_to_wrong_slot_is_rejected(self, checkpointed_node):
        node = checkpointed_node
        shifted = dataclasses.replace(
            node.durable_checkpoint, slot=node.durable_checkpoint.slot + 1
        )
        assert not shifted.verify(node.keystore, node.domain.node_names)

    def test_digest_binds_domain_slot_and_root(self, checkpointed_node):
        checkpoint = checkpointed_node.durable_checkpoint
        original = checkpoint_digest(
            checkpoint.domain, checkpoint.slot, checkpoint.state_root
        )
        assert original != checkpoint_digest(
            checkpoint.domain, checkpoint.slot + 1, checkpoint.state_root
        )
        assert original != checkpoint_digest(
            checkpoint.domain, checkpoint.slot, b"\x00" * 32
        )


# ---------------------------------------------------------------------------
# Gap-recovery backoff (satellite: replaces the fixed 150 ms retry)
# ---------------------------------------------------------------------------


class TestGapRecoveryBackoff:
    def test_gap_queries_back_off_150_to_1200_capped(self):
        run = materialize(_durable_scenario())
        node = _height1_node(run.deployment)
        engine = node.engine
        delays = []
        real_set_timer = node.set_timer

        def capturing(delay_ms, callback):
            delays.append(delay_ms)
            return real_set_timer(delay_ms, callback)

        node.set_timer = capturing
        # Decide slot 2 while slot 1 is missing: a delivery gap opens.
        engine._log.record(2, internal_transfer(node.domain.id))
        engine._maybe_arm_gap_recovery()
        assert delays == [GAP_RECOVERY_MS]
        # Each query for the same stuck head doubles the wait, capped.
        for _ in range(4):
            engine._recover_gap()
        assert delays == [150.0, 300.0, 600.0, 1200.0, 1200.0]
        assert delays[-1] == GAP_RECOVERY_MAX_MS

    def test_backoff_resets_when_the_gap_head_advances(self):
        run = materialize(_durable_scenario())
        node = _height1_node(run.deployment)
        engine = node.engine
        delays = []
        real_set_timer = node.set_timer
        node.set_timer = lambda d, cb: delays.append(d) or real_set_timer(d, cb)
        engine._log.record(2, internal_transfer(node.domain.id))
        engine._maybe_arm_gap_recovery()
        engine._recover_gap()
        assert delays[-1] == 2 * GAP_RECOVERY_MS
        # A different stuck head is a fresh gap: probe at the base rate again.
        engine._gap_head = 99
        engine._recovery_timer.cancel()
        engine._recovery_timer = None
        engine._maybe_arm_gap_recovery()
        assert delays[-1] == GAP_RECOVERY_MS


# ---------------------------------------------------------------------------
# Idempotent crash / wipe / recover (satellite: traced no-ops)
# ---------------------------------------------------------------------------


class TestIdempotentFaults:
    def _noops(self, trace):
        return [
            (event.get("action"), event.get("reason"))
            for event in trace.events("fault:noop")
        ]

    def test_double_crash_is_a_traced_noop(self):
        run = materialize(_durable_scenario())
        node = _height1_node(run.deployment)
        node.crash()
        node.crash()
        assert self._noops(run.trace) == [("crash", "already-crashed")]
        assert node.crashed

    def test_recover_without_crash_is_a_traced_noop(self):
        run = materialize(_durable_scenario())
        node = _height1_node(run.deployment)
        node.recover()
        assert self._noops(run.trace) == [("recover", "not-crashed")]
        assert not node.crashed

    def test_double_recover_is_a_traced_noop(self):
        run = materialize(_durable_scenario())
        node = _height1_node(run.deployment)
        node.crash()
        node.recover()
        node.recover()
        assert self._noops(run.trace) == [("recover", "not-crashed")]

    def test_wipe_while_crashed_is_a_traced_noop(self):
        run = materialize(_durable_scenario())
        node = _height1_node(run.deployment)
        node.crash()
        node.wipe()
        assert self._noops(run.trace) == [("wipe", "already-crashed")]
        assert node.wiped_total == 0

    def test_wipe_discards_volatile_state_but_keeps_the_wal(self):
        run = materialize(_durable_scenario())
        run.run()
        node = _height1_node(run.deployment)
        assert len(node.ledger) > 0
        appended_before = node.wal.appended_total
        node.wipe()
        assert node.crashed
        assert len(node.ledger) == 0
        assert node.wal.appended_total == appended_before
        assert node.wiped_total == 1


# ---------------------------------------------------------------------------
# Catch-up peer rotation and timeout backoff
# ---------------------------------------------------------------------------


class TestCatchUpRotation:
    def test_dead_peers_rotate_with_capped_backoff_then_rejoin(self):
        run = materialize(_durable_scenario())
        deployment = run.deployment
        node = _height1_node(deployment, node_index=2)
        peers = [
            peer
            for peer in deployment.nodes_of(node.domain.id)
            if peer.address != node.address
        ]
        for peer in peers:
            peer.crash()
        node.wipe()
        node.recover()
        manager = node.recovery
        assert manager.active
        first_queries = manager.queries_sent
        assert first_queries == 1
        # With every peer dead each query times out; attempts rotate peers
        # and the per-attempt timeout doubles up to the cap.
        deployment.simulator.run(until_ms=deployment.simulator.now + 2000.0)
        assert manager.active  # still trying — nobody can answer
        assert manager.queries_sent >= 5
        assert manager._timeout_ms == CATCHUP_TIMEOUT_MAX_MS
        # One peer coming back is enough: it answers (nothing decided), the
        # recovering node learns it is already caught up, and rejoins.
        peers[0].recover()
        deployment.simulator.run(until_ms=deployment.simulator.now + 2000.0)
        assert not manager.active
        assert not manager.pending
        assert manager.recoveries_completed == 1
        assert len(run.trace.events("recovery:rejoin")) == 1

    def test_timeouts_start_at_the_base_value(self):
        assert CATCHUP_TIMEOUT_MS == 50.0
        assert CATCHUP_TIMEOUT_MAX_MS == 400.0


# ---------------------------------------------------------------------------
# Recovery under adversity (satellite 3)
# ---------------------------------------------------------------------------


class TestRecoveryUnderAdversity:
    def test_wiping_the_pbft_primary_mid_batch_recovers(self):
        plan = FaultPlan(
            name="wipe-primary",
            actions=(
                FaultAction(
                    kind="wipe", at_ms=60.0, domain="D11", node=0, until_ms=160.0
                ),
            ),
        )
        scenario = _durable_scenario(
            num_transactions=96,
            num_clients=8,
            batch_size=4,
            batch_timeout_ms=2.0,
            fault_plan=plan,
        )
        run = ScenarioRunner(check_invariants=True).execute(scenario)
        assert run.summary is not None
        assert run.summary.committed == 96
        assert run.summary.pending == 0
        rejoined = {e.node for e in run.trace.events("recovery:rejoin")}
        assert "D11/n0" in rejoined

    def test_wipe_during_catchup_restarts_recovery(self):
        # The second wipe lands 0.2 ms after the first recover — while the
        # first catch-up exchange is still in flight — so the first attempt
        # is abandoned and the recovery after the second outage must redo
        # replay and catch-up from scratch.
        plan = FaultPlan(
            name="wipe-during-catchup",
            actions=(
                FaultAction(
                    kind="wipe", at_ms=50.0, domain="D12", node=1, until_ms=120.0
                ),
                FaultAction(
                    kind="wipe", at_ms=120.2, domain="D12", node=1, until_ms=200.0
                ),
            ),
        )
        scenario = _durable_scenario(
            num_transactions=96, num_clients=8, fault_plan=plan
        )
        run = ScenarioRunner(check_invariants=True).execute(scenario)
        assert run.summary is not None
        assert run.summary.committed == 96
        wipes = [e for e in run.trace.events("fault:wipe") if e.node == "D12/n1"]
        rejoins = [
            e for e in run.trace.events("recovery:rejoin") if e.node == "D12/n1"
        ]
        assert len(wipes) == 2
        assert rejoins, "the node never completed recovery"
        assert rejoins[-1].at_ms > 200.0

    @pytest.mark.parametrize("figure", ["fig07a", "fig10a"])
    def test_durability_off_vs_on_outcomes_match_across_seeds(self, figure):
        runner = ScenarioRunner(check_invariants=True)
        base = registry.get(figure).with_overrides(
            num_transactions=24, num_clients=4
        )
        durable = base.with_overrides(
            durability=True, wal_sync_ms=0.05, checkpoint_interval=8
        )
        for seed in range(10):
            off = runner.execute(base.with_overrides(seed=seed))
            on = runner.execute(durable.with_overrides(seed=seed))
            assert off.summary is not None and on.summary is not None
            assert on.summary.committed == off.summary.committed, seed
            assert on.summary.aborted == off.summary.aborted, seed
            assert on.summary.pending == off.summary.pending, seed


# ---------------------------------------------------------------------------
# time_to_rejoin_ms reporting (satellite 4)
# ---------------------------------------------------------------------------


class TestTimeToRejoinReporting:
    def test_no_fault_run_reports_nothing(self):
        run = materialize(_durable_scenario())
        result = run.run()
        assert result.time_to_rejoin_ms == ()
        assert "time_to_rejoin_ms" not in result.to_dict()

    def test_wipe_run_reports_the_outage_and_round_trips(self):
        plan = FaultPlan(
            name="one-wipe",
            actions=(
                FaultAction(
                    kind="wipe", at_ms=40.0, domain="D13", node=2, until_ms=90.0
                ),
            ),
        )
        run = materialize(_durable_scenario(num_transactions=96, fault_plan=plan))
        result = run.run()
        assert len(result.time_to_rejoin_ms) == 1
        node, delta = result.time_to_rejoin_ms[0]
        assert node == "D13/n2"
        # The delta covers the whole outage (50 ms) plus the catch-up.
        assert 50.0 <= delta < 500.0
        payload = result.to_dict()
        assert payload["time_to_rejoin_ms"] == [[node, delta]] or payload[
            "time_to_rejoin_ms"
        ] == [(node, delta)]
        assert RunResult.from_dict(payload) == result


# ---------------------------------------------------------------------------
# The churn sweep (tentpole acceptance) and the recovery-safety invariant
# ---------------------------------------------------------------------------


class TestChurnSweep:
    def test_every_replica_is_wiped_and_every_wipe_rejoins(self):
        run = ScenarioRunner(check_invariants=True).execute(
            registry.get("churn-sweep")
        )
        assert run.summary is not None
        assert run.summary.committed == 128
        assert run.summary.pending == 0
        trace = run.trace
        wiped = {e.node for e in trace.events("fault:wipe")}
        every_replica = {
            node.address
            for domain in run.deployment.hierarchy.height1_domains()
            for node in run.deployment.nodes_of(domain.id)
        }
        assert wiped == every_replica
        assert len(trace.events("fault:wipe")) == 17
        assert len(trace.events("recovery:rejoin")) == 17

    def test_recovery_safety_is_among_the_checks_run(self):
        run = ScenarioRunner(check_invariants=False).execute(
            registry.get("churn-sweep-primaries")
        )
        report = InvariantChecker(run.deployment, trace=run.trace).check()
        assert "recovery-safety" in report.checks_run
        assert report.ok, [str(v) for v in report.violations]


class TestRecoverySafetyOnForgedTraces:
    """The checker must *flag* broken recoveries, not just pass clean ones."""

    def _checker(self, forged: TraceRecorder) -> InvariantChecker:
        run = materialize(_durable_scenario())
        return InvariantChecker(run.deployment, trace=forged)

    def _trace(self) -> TraceRecorder:
        return TraceRecorder()

    def test_rejoin_without_any_recovery_is_flagged(self):
        forged = self._trace()
        forged.record("recovery:rejoin", at_ms=10.0, domain="D11", node="D11/n0")
        report = self._checker(forged).check()
        assert any(
            "without replay" in str(v) for v in report.of("recovery-safety")
        )

    def test_catchup_before_replay_is_flagged(self):
        forged = self._trace()
        forged.record("fault:wipe", at_ms=5.0, domain="D11", node="D11/n0")
        forged.record("recovery:catchup", at_ms=9.0, domain="D11", node="D11/n0")
        report = self._checker(forged).check()
        assert any(
            "before any replay" in str(v) for v in report.of("recovery-safety")
        )

    def test_recovered_node_that_never_rejoins_is_flagged(self):
        forged = self._trace()
        forged.record("fault:wipe", at_ms=5.0, domain="D11", node="D11/n0")
        forged.record("fault:recover", at_ms=20.0, domain="D11", node="D11/n0")
        forged.record("recovery:replay", at_ms=20.0, domain="D11", node="D11/n0")
        report = self._checker(forged).check()
        assert any(
            "never reached recovery:rejoin" in str(v)
            for v in report.of("recovery-safety")
        )

    def test_conflicting_votes_across_a_wipe_are_flagged(self):
        forged = self._trace()
        forged.record("fault:wipe", at_ms=5.0, domain="D11", node="D11/n0")
        forged.record(
            "commit-vote", at_ms=8.0, domain="D11", node="D11/n0",
            slot=3, view=0, digest=b"payload-one",
        )
        forged.record(
            "commit-vote", at_ms=9.0, domain="D11", node="D11/n0",
            slot=3, view=0, digest=b"payload-two",
        )
        report = self._checker(forged).check()
        assert any(
            "2 different payloads" in str(v) for v in report.of("recovery-safety")
        )

    def test_a_legal_recovery_sequence_is_clean(self):
        forged = self._trace()
        node = "D11/n0"
        forged.record("fault:wipe", at_ms=5.0, domain="D11", node=node)
        forged.record("fault:recover", at_ms=20.0, domain="D11", node=node)
        forged.record("recovery:replay", at_ms=20.0, domain="D11", node=node)
        forged.record("recovery:catchup", at_ms=21.0, domain="D11", node=node)
        forged.record("recovery:rejoin", at_ms=22.0, domain="D11", node=node)
        report = self._checker(forged).check()
        assert report.of("recovery-safety") == []
