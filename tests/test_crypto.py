"""Unit and property tests for the simulated PKI, digests, and certificates."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.certificates import (
    QuorumCertificate,
    SignedPayload,
    Signer,
    ThresholdSignature,
)
from repro.crypto.digests import canonical_encode, digest, digest_hex
from repro.crypto.keys import KeyPair, KeyStore
from repro.errors import CertificateError, CryptoError, SignatureError


class TestKeys:
    def test_deterministic_generation_with_seed(self):
        a = KeyPair.generate("D11/n0", seed=7)
        b = KeyPair.generate("D11/n0", seed=7)
        assert a.secret == b.secret and a.public == b.public

    def test_different_owners_get_different_keys(self):
        assert KeyPair.generate("a", seed=7).secret != KeyPair.generate("b", seed=7).secret

    def test_empty_owner_rejected(self):
        with pytest.raises(CryptoError):
            KeyPair(owner="", secret=b"x" * 32)

    def test_short_secret_rejected(self):
        with pytest.raises(CryptoError):
            KeyPair(owner="n", secret=b"short")

    def test_keystore_sign_verify_roundtrip(self):
        store = KeyStore(seed=3)
        store.register("node-a")
        signature = store.sign("node-a", b"payload")
        assert store.verify("node-a", b"payload", signature)

    def test_keystore_rejects_wrong_signer(self):
        store = KeyStore(seed=3)
        store.register("node-a")
        store.register("node-b")
        signature = store.sign("node-a", b"payload")
        assert not store.verify("node-b", b"payload", signature)

    def test_keystore_rejects_tampered_payload(self):
        store = KeyStore(seed=3)
        store.register("node-a")
        signature = store.sign("node-a", b"payload")
        assert not store.verify("node-a", b"payload!", signature)

    def test_unknown_principal_raises(self):
        store = KeyStore()
        with pytest.raises(CryptoError):
            store.key_of("ghost")

    def test_register_is_idempotent(self):
        store = KeyStore(seed=1)
        assert store.register("n") is store.register("n")
        assert len(store) == 1


class TestDigests:
    def test_digest_is_deterministic(self):
        assert digest("a", 1, [1, 2]) == digest("a", 1, [1, 2])

    def test_digest_distinguishes_types(self):
        assert digest("1") != digest(1)
        assert digest(True) != digest(1)

    def test_digest_distinguishes_order(self):
        assert digest("a", "b") != digest("b", "a")

    def test_mapping_encoding_is_order_insensitive(self):
        assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})

    def test_digest_hex_is_hex(self):
        value = digest_hex("x")
        assert len(value) == 64
        int(value, 16)

    @given(st.lists(st.integers(), max_size=10), st.lists(st.integers(), max_size=10))
    def test_distinct_lists_distinct_digests(self, a, b):
        if a != b:
            assert digest(a) != digest(b)
        else:
            assert digest(a) == digest(b)


class TestQuorumCertificates:
    def _store(self, owners):
        store = KeyStore(seed=11)
        store.register_all(owners)
        return store

    def test_certificate_requires_enough_signatures(self):
        store = self._store(["n0", "n1", "n2"])
        signer = Signer(store, "n0")
        payload = digest("request")
        contributions = {name: store.sign(name, payload) for name in ["n0", "n1", "n2"]}
        certificate = signer.certify(payload, contributions, required=3)
        assert certificate.is_complete
        assert certificate.verify(store)

    def test_incomplete_certificate_rejected(self):
        store = self._store(["n0", "n1", "n2"])
        signer = Signer(store, "n0")
        payload = digest("request")
        with pytest.raises(CertificateError):
            signer.certify(payload, {"n0": store.sign("n0", payload)}, required=3)

    def test_invalid_contribution_rejected(self):
        store = self._store(["n0", "n1"])
        signer = Signer(store, "n0")
        payload = digest("request")
        with pytest.raises(SignatureError):
            signer.certify(payload, {"n1": b"forged"}, required=1)

    def test_verify_restricts_allowed_signers(self):
        store = self._store(["n0", "n1", "outsider"])
        payload = digest("request")
        entries = tuple(
            SignedPayload(name, payload, store.sign(name, payload))
            for name in ("n0", "outsider")
        )
        certificate = QuorumCertificate(payload_digest=payload, required=2, signatures=entries)
        assert certificate.verify(store)
        assert not certificate.verify(store, allowed_signers=["n0", "n1"])

    def test_duplicate_signer_rejected(self):
        store = self._store(["n0"])
        payload = digest("request")
        entry = SignedPayload("n0", payload, store.sign("n0", payload))
        with pytest.raises(CertificateError):
            QuorumCertificate(payload_digest=payload, required=1, signatures=(entry, entry))

    def test_with_signature_is_idempotent_per_signer(self):
        store = self._store(["n0", "n1"])
        payload = digest("request")
        certificate = QuorumCertificate(payload_digest=payload, required=2)
        entry = SignedPayload("n0", payload, store.sign("n0", payload))
        grown = certificate.with_signature(entry).with_signature(entry)
        assert len(grown.signatures) == 1

    def test_mixed_payloads_rejected(self):
        store = self._store(["n0"])
        certificate = QuorumCertificate(payload_digest=digest("a"), required=1)
        entry = SignedPayload("n0", digest("b"), store.sign("n0", digest("b")))
        with pytest.raises(CertificateError):
            certificate.with_signature(entry)


class TestThresholdSignature:
    def test_aggregate_and_verify(self):
        store = KeyStore(seed=5)
        store.register_all(["n0", "n1", "n2"])
        payload = digest("block")
        aggregate = ThresholdSignature.aggregate_from(store, payload, ["n0", "n1", "n2"], 3)
        assert aggregate.verify(store)

    def test_too_few_signers_rejected(self):
        store = KeyStore(seed=5)
        store.register_all(["n0", "n1"])
        with pytest.raises(CertificateError):
            ThresholdSignature.aggregate_from(store, digest("x"), ["n0"], 2)

    def test_tampered_aggregate_fails(self):
        store = KeyStore(seed=5)
        store.register_all(["n0", "n1"])
        payload = digest("block")
        aggregate = ThresholdSignature.aggregate_from(store, payload, ["n0", "n1"], 2)
        forged = ThresholdSignature(
            payload_digest=payload,
            threshold=2,
            participants=aggregate.participants,
            aggregate=b"\x00" * 32,
        )
        assert not forged.verify(store)
