"""Shared fixtures and helpers for the Saguaro test suite."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.common.config import (
    DeploymentConfig,
    DomainSpec,
    HierarchySpec,
    RoundConfig,
    TimerConfig,
    WorkloadConfig,
)
from repro.common.types import (
    ClientId,
    CrossDomainProtocol,
    DomainId,
    FailureModel,
    TransactionId,
    TransactionKind,
)
from repro.core.system import SaguaroDeployment
from repro.ledger.transaction import Transaction
from repro.topology.builders import build_paper_figure1_tree, build_tree
from repro.topology.regions import placement_for_profile
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.micropayment import MicropaymentApplication, account_key


# ---------------------------------------------------------------------------
# Identifiers and transactions
# ---------------------------------------------------------------------------

_TID_COUNTER = itertools.count(10_000)


def make_tid(client: Optional[ClientId] = None) -> TransactionId:
    return TransactionId(number=next(_TID_COUNTER), origin=client)


def internal_transfer(
    domain: DomainId,
    sender_index: int = 0,
    recipient_index: int = 1,
    amount: float = 5.0,
    client: Optional[ClientId] = None,
) -> Transaction:
    sender = account_key(domain, sender_index)
    recipient = account_key(domain, recipient_index)
    return Transaction(
        tid=make_tid(client),
        kind=TransactionKind.INTERNAL,
        involved_domains=(domain,),
        payload={"op": "transfer", "sender": sender, "recipient": recipient, "amount": amount},
        read_keys=(sender, recipient),
        write_keys=(sender, recipient),
        client=client,
    )


def cross_transfer(
    domains: Sequence[DomainId],
    sender_index: int = 0,
    recipient_index: int = 1,
    amount: float = 5.0,
    client: Optional[ClientId] = None,
) -> Transaction:
    sender = account_key(domains[0], sender_index)
    recipient = account_key(domains[1], recipient_index)
    return Transaction(
        tid=make_tid(client),
        kind=TransactionKind.CROSS_DOMAIN,
        involved_domains=tuple(domains),
        payload={"op": "transfer", "sender": sender, "recipient": recipient, "amount": amount},
        read_keys=(sender, recipient),
        write_keys=(sender, recipient),
        client=client,
    )


# ---------------------------------------------------------------------------
# Deployments
# ---------------------------------------------------------------------------


def quick_rounds() -> RoundConfig:
    return RoundConfig(height1_interval_ms=10.0)


def make_deployment(
    protocol: CrossDomainProtocol = CrossDomainProtocol.COORDINATOR,
    failure_model: FailureModel = FailureModel.CRASH,
    latency_profile: str = "nearby-eu",
    faults: int = 1,
    clients: Optional[Dict[ClientId, DomainId]] = None,
    seed: int = 11,
) -> SaguaroDeployment:
    """A paper-Figure-1 deployment with the micropayment application."""
    spec = DomainSpec(failure_model=failure_model, faults=faults)
    config = DeploymentConfig(
        hierarchy=HierarchySpec(default_spec=spec),
        protocol=protocol,
        latency_profile=latency_profile,
        rounds=quick_rounds(),
        seed=seed,
    )
    hierarchy = build_tree(config.hierarchy)
    placement_for_profile(hierarchy, latency_profile)
    application = MicropaymentApplication(accounts_per_domain=32)
    for client, home in (clients or {}).items():
        application.register_client(client, home)
    return SaguaroDeployment(config, application, hierarchy)


def height1_ids(deployment: SaguaroDeployment) -> List[DomainId]:
    return [d.id for d in deployment.hierarchy.height1_domains()]


def run_until_done(deployment: SaguaroDeployment, extra_ms: float = 200.0) -> None:
    """Run the simulator until quiet plus a fixed drain, then stop rounds."""
    deployment.start()
    deployment.simulator.run(until_ms=deployment.simulator.now + extra_ms)
    deployment.stop_rounds()


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def figure1_hierarchy():
    hierarchy = build_paper_figure1_tree()
    placement_for_profile(hierarchy, "nearby-eu")
    return hierarchy


@pytest.fixture
def coordinator_deployment() -> SaguaroDeployment:
    return make_deployment(CrossDomainProtocol.COORDINATOR)


@pytest.fixture
def optimistic_deployment() -> SaguaroDeployment:
    return make_deployment(CrossDomainProtocol.OPTIMISTIC)


@pytest.fixture
def byzantine_deployment() -> SaguaroDeployment:
    return make_deployment(failure_model=FailureModel.BYZANTINE)
