"""Tests for node-level behaviour and the experiment harness."""

import pytest

from repro.analysis.experiment import (
    BASELINE_AHL,
    BASELINE_SHARPER,
    ExperimentConfig,
    ExperimentRunner,
    SAGUARO_COORDINATOR,
    SAGUARO_OPTIMISTIC,
    SystemVariant,
    paper_cross_domain_variants,
)
from repro.common.types import ClientId, DomainId, FailureModel, TransactionStatus
from repro.errors import ConfigurationError, ExperimentError
from tests.conftest import internal_transfer, make_deployment

D01, D11, D21 = DomainId(0, 1), DomainId(1, 1), DomainId(2, 1)


class TestSaguaroNode:
    def test_height1_nodes_hold_ledger_and_state(self, coordinator_deployment):
        node = coordinator_deployment.primary_node_of(D11)
        assert node.ledger is not None and node.state is not None
        assert node.dag is None and node.summary is None

    def test_height2_nodes_hold_dag_and_summary(self, coordinator_deployment):
        node = coordinator_deployment.primary_node_of(D21)
        assert node.dag is not None and node.summary is not None
        assert node.ledger is None and node.state is None

    def test_certificate_size_depends_on_failure_model(self):
        crash = make_deployment(failure_model=FailureModel.CRASH)
        assert len(crash.primary_node_of(D11).certify(b"x" * 32).signatures) == 1
        byz = make_deployment(failure_model=FailureModel.BYZANTINE)
        assert len(byz.primary_node_of(D11).certify(b"x" * 32).signatures) == 3

    def test_service_cost_grows_with_signature_count(self, coordinator_deployment):
        node = coordinator_deployment.primary_node_of(D11)

        class _Light:
            verify_count = 1

        class _Heavy:
            verify_count = 5

        assert node._service_cost(_Heavy()) > node._service_cost(_Light())

    def test_append_and_execute_is_idempotent_per_transaction(self, coordinator_deployment):
        node = coordinator_deployment.primary_node_of(D11)
        tx = internal_transfer(D11, amount=10.0)
        node.append_and_execute(tx)
        balance_after_first = node.state.balance("acct:D11:0")
        assert node.execute_once(tx) is None  # second execution is a no-op
        assert node.state.balance("acct:D11:0") == balance_after_first
        assert node.has_executed(tx.tid)

    def test_crashed_node_ignores_traffic(self, coordinator_deployment):
        node = coordinator_deployment.primary_node_of(D11)
        node.crash()
        assert node.crashed
        assert coordinator_deployment.network.is_crashed(node.address)
        node.recover()
        assert not node.crashed

    def test_primary_rotates_with_view(self, coordinator_deployment):
        node = coordinator_deployment.primary_node_of(D11)
        assert node.is_primary
        replica = coordinator_deployment.nodes_of(D11)[1]
        assert not replica.is_primary


class TestExperimentHarness:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError):
            SystemVariant(label="x", engine="quantum")

    def test_paper_variant_list_matches_figures(self):
        labels = [v.label for v in paper_cross_domain_variants()]
        assert labels == ["AHL", "SharPer", "Coordinator", "Opt-10%C", "Opt-50%C", "Opt-90%C"]

    @pytest.mark.parametrize(
        "engine",
        [SAGUARO_COORDINATOR, SAGUARO_OPTIMISTIC, BASELINE_AHL, BASELINE_SHARPER],
    )
    def test_each_engine_runs_a_small_point(self, engine):
        config = ExperimentConfig(
            num_transactions=24, num_clients=4, cross_domain_ratio=0.25,
            round_interval_ms=10.0,
        )
        runner = ExperimentRunner(config)
        summary = runner.run(SystemVariant(label="t", engine=engine))
        assert summary.committed + summary.aborted == 24
        assert summary.throughput_tps > 0

    def test_sweep_produces_one_point_per_load(self):
        config = ExperimentConfig(num_transactions=16, num_clients=2, cross_domain_ratio=0.0)
        runner = ExperimentRunner(config)
        points = runner.sweep(
            SystemVariant(label="Coordinator", engine=SAGUARO_COORDINATOR), [2, 4]
        )
        assert [p.clients for p in points] == [2, 4]
        assert all(p.throughput_tps > 0 for p in points)

    def test_contention_override_changes_workload(self):
        config = ExperimentConfig(num_transactions=16, num_clients=4)
        runner = ExperimentRunner(config)
        base = runner._workload_config(SystemVariant("a", SAGUARO_OPTIMISTIC))
        high = runner._workload_config(
            SystemVariant("b", SAGUARO_OPTIMISTIC, contention_override=0.9)
        )
        assert base.contention_ratio == config.contention_ratio
        assert high.contention_ratio == 0.9

    def test_prepare_registers_mobile_clients_with_the_application(self):
        config = ExperimentConfig(
            num_transactions=20, num_clients=4, mobile_ratio=1.0, cross_domain_ratio=0.0
        )
        runner = ExperimentRunner(config)
        deployment, workload = runner.prepare(
            SystemVariant("Saguaro", SAGUARO_COORDINATOR)
        )
        mobile_clients = {t.client for t in workload.transactions}
        homes = {workload.clients[c] for c in mobile_clients}
        for home in homes:
            state = deployment.state_of(home)
            assert any(key.startswith("acct:client:") for key in state.keys())
