"""Integration tests for the optimistic cross-domain protocol (§6)."""

import pytest

from repro.common.types import (
    ClientId,
    CrossDomainProtocol,
    DomainId,
    TransactionStatus,
)
from tests.conftest import cross_transfer, internal_transfer, make_deployment

D01, D02 = DomainId(0, 1), DomainId(0, 2)
D11, D12, D13, D14 = (DomainId(1, i) for i in range(1, 5))
D21 = DomainId(2, 1)


def _client(leaf, index=1):
    return ClientId(home=leaf, index=index)


class TestOptimisticCommit:
    def test_cross_domain_transaction_commits_locally_without_coordination(
        self, optimistic_deployment
    ):
        tx = cross_transfer((D11, D12), client=_client(D01))
        summary = optimistic_deployment.run_workload([tx], drain_ms=400.0)
        assert summary.committed == 1
        for domain in (D11, D12):
            assert tx.tid in optimistic_deployment.ledger_of(domain)

    def test_local_latency_is_lower_than_coordinator(self):
        """The optimistic path avoids wide-area rounds before commit (§8.1)."""
        client = _client(D01)
        optimistic = make_deployment(CrossDomainProtocol.OPTIMISTIC)
        opt_summary = optimistic.run_workload(
            [cross_transfer((D11, D13), client=client)], drain_ms=400.0
        )
        coordinator = make_deployment(CrossDomainProtocol.COORDINATOR)
        coord_summary = coordinator.run_workload(
            [cross_transfer((D11, D13), client=client)], drain_ms=400.0
        )
        assert opt_summary.avg_latency_ms < coord_summary.avg_latency_ms

    def test_decision_finalises_status_to_committed(self, optimistic_deployment):
        tx = cross_transfer((D11, D12), client=_client(D01))
        optimistic_deployment.run_workload([tx], drain_ms=600.0)
        for domain in (D11, D12):
            entry = optimistic_deployment.ledger_of(domain).entry_of(tx.tid)
            assert entry.status is TransactionStatus.COMMITTED

    def test_lca_sends_the_final_decision(self, optimistic_deployment):
        from repro.core.optimistic import OptimisticCrossDomainProtocol

        tx = cross_transfer((D11, D12), client=_client(D01))
        optimistic_deployment.run_workload([tx], drain_ms=600.0)
        d21 = optimistic_deployment.primary_node_of(D21)
        component = next(
            c for c in d21.components if isinstance(c, OptimisticCrossDomainProtocol)
        )
        assert tx.tid in component.decisions_sent()

    def test_mixed_workload_commits_consistently(self, optimistic_deployment):
        clients = [_client(D01), _client(D02)]
        transactions = []
        for i in range(16):
            transactions.append(
                cross_transfer(
                    (D11, D12) if i % 2 == 0 else (D12, D11),
                    sender_index=i % 3,
                    recipient_index=(i + 1) % 3,
                    client=clients[i % 2],
                )
            )
        transactions.append(internal_transfer(D11, client=clients[0]))
        summary = optimistic_deployment.run_workload(transactions, drain_ms=800.0)
        assert summary.committed + summary.aborted == len(transactions)
        # Consistency after decisions: surviving conflicting transactions are
        # ordered identically on every overlapping domain.
        survivors = [
            t
            for t in transactions
            if len(t.involved_domains) > 1
            and optimistic_deployment.metrics.record(t.tid).is_committed
        ]
        for i, first in enumerate(survivors):
            for second in survivors[i + 1 :]:
                shared = set(first.involved_domains) & set(second.involved_domains)
                if len(shared) < 2:
                    continue
                orders = {
                    optimistic_deployment.ledger_of(d).relative_order(
                        first.tid, second.tid
                    )
                    for d in shared
                }
                assert len(orders) == 1

    def test_aborted_transactions_are_aborted_on_all_involved_domains(
        self, optimistic_deployment
    ):
        clients = [_client(D01), _client(D02)]
        transactions = [
            cross_transfer(
                (D11, D12) if i % 2 == 0 else (D12, D11),
                sender_index=0,
                recipient_index=1,
                client=clients[i % 2],
            )
            for i in range(12)
        ]
        optimistic_deployment.run_workload(transactions, drain_ms=800.0)
        aborted = [
            t for t in transactions if optimistic_deployment.metrics.record(t.tid).is_aborted
        ]
        for tx in aborted:
            for domain in tx.involved_domains:
                ledger = optimistic_deployment.ledger_of(domain)
                if tx.tid in ledger:
                    assert ledger.entry_of(tx.tid).status is TransactionStatus.ABORTED

    def test_dependency_lists_follow_data_dependencies(self, optimistic_deployment):
        """Unit-level check of §6 dependency tracking on one height-1 node."""
        from repro.core.lazy import SHARED_DEPENDENCIES
        from repro.core.messages import OptimisticOrder
        from repro.core.optimistic import OptimisticCrossDomainProtocol

        client = _client(D01)
        cross = cross_transfer((D11, D12), sender_index=0, recipient_index=1, client=client)
        dependent = internal_transfer(D11, sender_index=0, recipient_index=2, client=client)
        independent = internal_transfer(D11, sender_index=5, recipient_index=6, client=client)

        primary = optimistic_deployment.primary_node_of(D11)
        component = next(
            c for c in primary.components if isinstance(c, OptimisticCrossDomainProtocol)
        )
        component._decided_order(
            OptimisticOrder(transaction=cross, initiator_domain=D11, client_address="c")
        )
        primary.append_and_execute(dependent)
        primary.append_and_execute(independent)

        dependencies = primary.shared.get(SHARED_DEPENDENCIES, {})
        assert cross.tid in dependencies
        assert dependent.tid in dependencies[cross.tid]
        assert independent.tid not in dependencies[cross.tid]
        # Finalising the cross-domain transaction clears its dependency list.
        component._finalize_commit(cross.tid)
        assert cross.tid not in primary.shared.get(SHARED_DEPENDENCIES, {})

    def test_root_volume_counts_only_surviving_transactions(self, optimistic_deployment):
        clients = [_client(D01), _client(D02)]
        transactions = [
            cross_transfer((D11, D12), sender_index=i, recipient_index=i + 1,
                           amount=10.0, client=clients[i % 2])
            for i in range(6)
        ]
        summary = optimistic_deployment.run_workload(transactions, drain_ms=800.0)
        total = optimistic_deployment.root_summary().aggregate_sum("volume:")
        # Each committed cross transfer adds its amount to the volume counter of
        # both involved domains (sender side and recipient side).
        assert total <= 2 * sum(t.payload["amount"] for t in transactions)
        assert summary.committed > 0
