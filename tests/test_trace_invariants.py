"""TraceRecorder behavior and InvariantChecker verdicts.

Two halves: every registry scenario must *pass* invariant checking (the
acceptance bar for the fault subsystem), and the checker must *catch* seeded
violations (otherwise "passing" means nothing).
"""

import pytest

from repro.common.types import TransactionStatus
from repro.errors import InvariantViolationError
from repro.faults import InvariantChecker, TraceRecorder
from repro.scenarios import ScenarioRunner, registry
from tests.conftest import cross_transfer, make_deployment


def _small(scenario):
    return scenario.with_overrides(num_transactions=32, num_clients=4)


@pytest.fixture(scope="module")
def checked_run():
    """One executed, invariant-checked small figure run, shared by tests."""
    runner = ScenarioRunner()
    run = runner.execute(_small(registry.get("fig08a")))
    run.check_invariants()
    return run


class TestTraceRecorder:
    def test_run_records_every_protocol_stage(self, checked_run):
        kinds = checked_run.trace.kinds()
        for expected in ("propose", "prepare-vote", "commit-vote", "decide",
                         "append", "certify", "handoff:forward",
                         "handoff:prepare", "handoff:prepared", "handoff:commit"):
            assert kinds.get(expected, 0) > 0, expected

    def test_trace_json_round_trip(self, checked_run):
        trace = checked_run.trace
        restored = TraceRecorder.from_json(trace.to_json())
        assert list(restored) == list(trace)

    def test_disabled_recorder_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record("propose", at_ms=1.0, domain="D11", node="D11/n0")
        assert len(recorder) == 0

    def test_events_filters_by_kind_and_prefix(self, checked_run):
        trace = checked_run.trace
        decides = trace.events("decide")
        assert decides and all(e.kind == "decide" for e in decides)
        handoffs = trace.events_with_prefix("handoff:")
        assert handoffs and all(e.kind.startswith("handoff:") for e in handoffs)


class TestRegistryScenariosPassChecking:
    """Acceptance: every figure scenario is a *checked* execution."""

    @pytest.mark.parametrize("name", registry.PAPER_FIGURES)
    def test_paper_figure_passes_invariants(self, name):
        runner = ScenarioRunner(check_invariants=True)
        run = runner.execute(registry.get(name))
        assert run.summary is not None and run.summary.pending == 0

    @pytest.mark.parametrize("name", registry.ADVERSARIAL_SCENARIOS)
    def test_adversarial_scenario_passes_invariants(self, name):
        runner = ScenarioRunner(check_invariants=True)
        run = runner.execute(registry.get(name))
        assert run.summary is not None and run.summary.pending == 0
        # The fault plan actually fired: its arming left trace evidence.
        assert run.trace.events_with_prefix("fault:")


class TestCheckerCatchesSeededViolations:
    """Checker self-tests: corrupt a run (or a trace) and expect violations."""

    def test_tampered_replica_ledger_is_detected(self):
        runner = ScenarioRunner()
        run = runner.execute(_small(registry.get("fig07a")))
        domain = run.deployment.hierarchy.height1_domains()[0]
        replica = run.deployment.nodes_of(domain.id)[1]
        records = replica.ledger._records
        assert records, "expected committed entries on the replica"
        record = records[0]
        forged_tx = record.entry.transaction
        forged_tx = type(forged_tx)(
            tid=forged_tx.tid,
            kind=forged_tx.kind,
            involved_domains=forged_tx.involved_domains,
            payload={**dict(forged_tx.payload), "amount": 1_000_000.0},
            read_keys=forged_tx.read_keys,
            write_keys=forged_tx.write_keys,
            client=forged_tx.client,
        )
        records[0] = type(record)(
            position=record.position,
            entry=type(record.entry)(
                transaction=forged_tx,
                sequence=record.entry.sequence,
                status=record.entry.status,
                commit_time_ms=record.entry.commit_time_ms,
            ),
            previous_hash=record.previous_hash,
            block_hash=record.block_hash,
        )
        report = InvariantChecker(run.deployment).check()
        assert not report.ok
        assert report.of("replica-consistency") or report.of("chain-integrity")
        with pytest.raises(InvariantViolationError):
            report.raise_if_violated()

    def _synthetic_trace(self, deployment):
        domain = deployment.hierarchy.height1_domains()[0]
        nodes = [n.address for n in deployment.nodes_of(domain.id)]
        return domain, nodes, TraceRecorder()

    def test_decide_without_quorum_votes_is_detected(self, checked_run):
        deployment = checked_run.deployment
        domain, nodes, trace = self._synthetic_trace(deployment)
        trace.record("commit-vote", at_ms=1.0, domain=domain.id.name,
                     node=nodes[0], slot=1, digest=b"\x01")
        trace.record("decide", at_ms=2.0, domain=domain.id.name,
                     node=nodes[0], slot=1, digest=b"\x01")
        report = InvariantChecker(deployment, trace=trace).check()
        assert report.of("decide-quorum")

    def test_conflicting_decides_are_detected(self, checked_run):
        deployment = checked_run.deployment
        domain, nodes, trace = self._synthetic_trace(deployment)
        for node, digest in ((nodes[0], b"\x01"), (nodes[1], b"\x02")):
            for voter in nodes[:3]:
                trace.record("commit-vote", at_ms=1.0, domain=domain.id.name,
                             node=voter, slot=1, digest=digest)
            trace.record("decide", at_ms=2.0, domain=domain.id.name,
                         node=node, slot=1, digest=digest)
        report = InvariantChecker(deployment, trace=trace).check()
        assert report.of("conflicting-decide")

    def test_understrength_certificate_is_detected(self, checked_run):
        deployment = checked_run.deployment
        domain, nodes, trace = self._synthetic_trace(deployment)
        trace.record("certify", at_ms=1.0, domain=domain.id.name, node=nodes[0],
                     digest=b"\x03", signers=[nodes[0]], required=1)
        report = InvariantChecker(deployment, trace=trace).check()
        # required=1 understates the Byzantine domain's 2f+1 certificate size.
        assert report.of("certificate-quorum")

    def test_foreign_signer_in_certificate_is_detected(self, checked_run):
        deployment = checked_run.deployment
        domain, nodes, trace = self._synthetic_trace(deployment)
        signers = list(nodes[:-1]) + ["intruder/n9"]
        trace.record("certify", at_ms=1.0, domain=domain.id.name, node=nodes[0],
                     digest=b"\x04", signers=signers, required=len(signers))
        report = InvariantChecker(deployment, trace=trace).check()
        assert any(
            "outside the domain" in v.detail
            for v in report.of("certificate-quorum")
        )

    def test_broken_cross_domain_atomicity_is_detected(self):
        deployment = make_deployment()
        domains = [d.id for d in deployment.hierarchy.height1_domains()]
        transaction = cross_transfer(domains[:2])
        # Seed the violation: committed on the first involved domain only.
        for node in deployment.nodes_of(domains[0]):
            node.ledger.append_transaction(
                transaction, status=TransactionStatus.COMMITTED, commit_time_ms=1.0
            )
        report = InvariantChecker(deployment).check()
        assert report.of("cross-atomicity")

    def test_forged_cross_domain_order_violation_is_caught_by_indexed_path(self):
        """Self-test for the participant-set-indexed cross-order check.

        Forge the classic ordering violation — two cross-domain transactions
        over the same two domains committed in opposite orders — and assert
        the indexed path still catches it, with exactly the violations the
        naive O(cross²) pairwise scan reports.
        """
        deployment = make_deployment()
        domains = [d.id for d in deployment.hierarchy.height1_domains()]
        first = cross_transfer(domains[:2], sender_index=0, recipient_index=1)
        second = cross_transfer(domains[:2], sender_index=2, recipient_index=3)
        orders = {domains[0]: (first, second), domains[1]: (second, first)}
        for domain_id, (early, late) in orders.items():
            for node in deployment.nodes_of(domain_id):
                for tx in (early, late):
                    node.ledger.append_transaction(
                        tx, status=TransactionStatus.COMMITTED, commit_time_ms=1.0
                    )
        checker = InvariantChecker(deployment)
        indexed = checker._check_cross_domain_order()
        assert indexed, "the forged ordering violation must be flagged"
        assert any(
            first.tid.name in v.detail and second.tid.name in v.detail
            for v in indexed
        )
        report = checker.check()
        assert report.of("replica-consistency")

    def test_indexed_cross_order_check_matches_naive_scan(self):
        """Equivalence: indexed and naive scans agree, clean or violated.

        One real multi-cross run (nothing to flag) and the forged-violation
        deployment (something to flag) must produce identical violation sets.
        """
        def violations_agree(checker):
            indexed = {str(v) for v in checker._check_cross_domain_order()}
            naive = {str(v) for v in checker._check_cross_domain_order_naive()}
            assert indexed == naive
            return indexed

        run = ScenarioRunner().execute(
            registry.get("fig07b").with_overrides(num_transactions=32, num_clients=6)
        )
        assert not violations_agree(InvariantChecker(run.deployment))

        deployment = make_deployment()
        domains = [d.id for d in deployment.hierarchy.height1_domains()]
        first = cross_transfer(domains[:2], sender_index=0, recipient_index=1)
        second = cross_transfer(domains[:2], sender_index=2, recipient_index=3)
        # A third transaction over a *disjoint* pair: shares no domain pair
        # with the violators, so neither scan may pair it with them.
        third = cross_transfer(domains[2:4], sender_index=4, recipient_index=5)
        orders = {
            domains[0]: (first, second),
            domains[1]: (second, first),
            domains[2]: (third,),
            domains[3]: (third,),
        }
        for domain_id, txs in orders.items():
            for node in deployment.nodes_of(domain_id):
                for tx in txs:
                    node.ledger.append_transaction(
                        tx, status=TransactionStatus.COMMITTED, commit_time_ms=1.0
                    )
        flagged = violations_agree(InvariantChecker(deployment))
        assert flagged and all(third.tid.name not in v for v in flagged)

    def test_unfinished_transaction_fails_liveness_when_expected(self):
        deployment = make_deployment()
        domains = [d.id for d in deployment.hierarchy.height1_domains()]
        transaction = cross_transfer(domains[:2])
        deployment.metrics.record_issue(transaction.tid, transaction.kind, 1.0)
        report = InvariantChecker(deployment).check(expect_liveness=True)
        assert report.of("liveness")
        # ... but liveness is not asserted by default.
        assert InvariantChecker(deployment).check().ok
