"""Tests for DAG ledgers, block messages, abstraction functions, and views."""

import pytest

from repro.common.types import (
    DomainId,
    SequenceNumber,
    TransactionId,
    TransactionKind,
    TransactionStatus,
)
from repro.errors import LedgerError, StateError
from repro.ledger.abstraction import (
    PrefixSumAbstraction,
    SelectKeysAbstraction,
    SummarizedView,
    identity_abstraction,
)
from repro.ledger.block import BlockMessage
from repro.ledger.chain import LinearLedger
from repro.ledger.dag import DagLedger, deterministic_abort_choice
from repro.ledger.transaction import CommittedEntry, Transaction

D11, D12, D13, D21 = DomainId(1, 1), DomainId(1, 2), DomainId(1, 3), DomainId(2, 1)


def _internal(number, domain):
    return Transaction(
        tid=TransactionId(number=number),
        kind=TransactionKind.INTERNAL,
        involved_domains=(domain,),
    )


def _cross(number, domains):
    return Transaction(
        tid=TransactionId(number=number),
        kind=TransactionKind.CROSS_DOMAIN,
        involved_domains=tuple(domains),
    )


def _entry(transaction, positions):
    return CommittedEntry(
        transaction=transaction, sequence=SequenceNumber.multi(positions)
    )


def _block(domain, round_number, entries, **kwargs):
    return BlockMessage.build(
        domain=domain, round_number=round_number, entries=tuple(entries), **kwargs
    )


class TestBlockMessage:
    def test_merkle_root_verifies(self):
        entries = [_entry(_internal(i, D11), [(D11, i)]) for i in range(1, 4)]
        block = _block(D11, 1, entries)
        assert block.verify_merkle_root()
        assert not block.is_empty
        assert len(block.transaction_ids) == 3

    def test_empty_block_still_valid(self):
        block = _block(D11, 1, [])
        assert block.is_empty
        assert block.verify_merkle_root()

    def test_size_grows_with_entries(self):
        small = _block(D11, 1, [_entry(_internal(1, D11), [(D11, 1)])])
        large = _block(D11, 1, [_entry(_internal(i, D11), [(D11, i)]) for i in range(1, 9)])
        assert large.size_kb > small.size_kb

    def test_round_number_must_be_positive(self):
        with pytest.raises(LedgerError):
            _block(D11, 0, [])


class TestDagLedger:
    def test_internal_entries_form_a_chain_per_child(self):
        dag = DagLedger(D21)
        entries = [_entry(_internal(i, D11), [(D11, i)]) for i in range(1, 4)]
        dag.integrate_block(_block(D11, 1, entries), D11)
        assert len(dag) == 3
        order = dag.topological_order()
        assert [t.number for t in order] == [1, 2, 3]

    def test_cross_domain_transaction_appears_once(self):
        dag = DagLedger(D21)
        shared = _cross(5, (D11, D12))
        dag.integrate_block(_block(D11, 1, [_entry(shared, [(D11, 1)])]), D11)
        dag.integrate_block(_block(D12, 1, [_entry(shared, [(D12, 3)])]), D12)
        assert len(dag) == 1
        vertex = dag.vertex(shared.tid)
        assert vertex.fully_reported
        assert vertex.entry.position_in(D11) == 1
        assert vertex.entry.position_in(D12) == 3

    def test_stale_round_rejected(self):
        dag = DagLedger(D21)
        dag.integrate_block(_block(D11, 2, []), D11)
        with pytest.raises(LedgerError):
            dag.integrate_block(_block(D11, 1, []), D11)

    def test_tampered_block_rejected(self):
        dag = DagLedger(D21)
        block = _block(D11, 1, [_entry(_internal(1, D11), [(D11, 1)])])
        tampered = BlockMessage(
            domain=block.domain,
            round_number=block.round_number,
            entries=block.entries,
            merkle_root=b"\x00" * 32,
        )
        with pytest.raises(LedgerError):
            dag.integrate_block(tampered, D11)

    def test_consistent_cross_domain_order_reports_no_inconsistency(self):
        dag = DagLedger(D21)
        a, b = _cross(1, (D11, D12)), _cross(2, (D11, D12))
        dag.integrate_block(
            _block(D11, 1, [_entry(a, [(D11, 1)]), _entry(b, [(D11, 2)])]), D11
        )
        dag.integrate_block(
            _block(D12, 1, [_entry(a, [(D12, 5)]), _entry(b, [(D12, 6)])]), D12
        )
        assert dag.find_order_inconsistencies() == []

    def test_opposite_orders_detected_and_victim_deterministic(self):
        dag = DagLedger(D21)
        a, b = _cross(1, (D11, D12)), _cross(2, (D11, D12))
        dag.integrate_block(
            _block(D11, 1, [_entry(a, [(D11, 1)]), _entry(b, [(D11, 2)])]), D11
        )
        dag.integrate_block(
            _block(D12, 1, [_entry(b, [(D12, 1)]), _entry(a, [(D12, 2)])]), D12
        )
        conflicts = dag.find_order_inconsistencies()
        assert len(conflicts) == 1
        assert conflicts[0].victim == a.tid  # lowest id aborts (paper's rule)
        assert deterministic_abort_choice(a.tid, b.tid) == a.tid

    def test_single_shared_domain_is_not_an_inconsistency(self):
        dag = DagLedger(D21)
        a, b = _cross(1, (D11, D12)), _cross(2, (D12, D13))
        dag.integrate_block(_block(D12, 1, [_entry(a, [(D12, 1)]), _entry(b, [(D12, 2)])]), D12)
        dag.integrate_block(_block(D11, 1, [_entry(a, [(D11, 1)])]), D11)
        dag.integrate_block(_block(D13, 1, [_entry(b, [(D13, 1)])]), D13)
        assert dag.find_order_inconsistencies() == []

    def test_pending_cross_domain_lists_partially_reported(self):
        dag = DagLedger(D21)
        shared = _cross(9, (D11, D12))
        dag.integrate_block(_block(D11, 1, [_entry(shared, [(D11, 1)])]), D11)
        assert [v.tid for v in dag.pending_cross_domain()] == [shared.tid]

    def test_mark_aborted_flips_status(self):
        dag = DagLedger(D21)
        shared = _cross(9, (D11, D12))
        dag.integrate_block(_block(D11, 1, [_entry(shared, [(D11, 1)])]), D11)
        dag.mark_aborted(shared.tid)
        assert shared.tid in dag.aborted()
        assert dag.vertex(shared.tid).entry.status is TransactionStatus.ABORTED
        assert dag.committed_count() == 0

    def test_aborted_list_in_block_is_applied(self):
        dag = DagLedger(D21)
        shared = _cross(9, (D11, D12))
        dag.integrate_block(
            _block(D11, 1, [_entry(shared, [(D11, 1)])], aborted=(shared.tid,)), D11
        )
        assert shared.tid in dag.aborted()


class TestAbstractions:
    def test_identity_passes_everything(self):
        delta = {"a": 1, "b": "x"}
        assert identity_abstraction(delta) == delta

    def test_select_keys_filters_by_prefix(self):
        abstraction = SelectKeysAbstraction(prefixes=("hours:",))
        result = abstraction({"hours:alice": 3, "acct:bob": 10})
        assert result == {"hours:alice": 3}

    def test_prefix_sum_reduces_to_totals(self):
        abstraction = PrefixSumAbstraction(prefixes=("acct:",))
        result = abstraction({"acct:a": 10, "acct:b": 5, "other": 7})
        assert result == {"sum:acct:": 15}


class TestSummarizedView:
    def test_merge_and_aggregate(self):
        view = SummarizedView(D21)
        view.merge_delta(D11, {"volume:D11": 10.0}, round_number=1)
        view.merge_delta(D12, {"volume:D12": 5.0}, round_number=1)
        view.merge_delta(D11, {"volume:D11": 25.0}, round_number=2)
        assert view.aggregate_sum("volume:") == 30.0
        assert view.value(D11, "volume:D11") == 25.0
        assert set(view.children) == {D11, D12}

    def test_round_regression_rejected(self):
        view = SummarizedView(D21)
        view.merge_delta(D11, {"x": 1}, round_number=2)
        with pytest.raises(StateError):
            view.merge_delta(D11, {"x": 2}, round_number=2)

    def test_aggregate_matches_flattened_keys(self):
        """Queries still work one level up where keys carry a child prefix."""
        root = SummarizedView(DomainId(3, 1))
        root.merge_delta(D21, {"D11/volume:D11": 7.0, "D12/volume:D12": 3.0}, 1)
        assert root.aggregate_sum("volume:") == 10.0

    def test_aggregate_by_key(self):
        view = SummarizedView(D21)
        view.merge_delta(D11, {"hours:alice": 10.0}, 1)
        view.merge_delta(D12, {"hours:alice": 4.0, "hours:bob": 2.0}, 1)
        totals = view.aggregate_by_key("hours:")
        assert totals["hours:alice"] == 14.0
        assert totals["hours:bob"] == 2.0

    def test_cursor_deltas_capture_changes_only(self):
        view = SummarizedView(D21)
        view.merge_delta(D11, {"volume:D11": 5.0}, 1)
        cursor = view.cursor()
        assert view.own_abstract_delta(cursor) == {}
        view.merge_delta(D11, {"volume:D11": 9.0}, 2)
        delta = view.own_abstract_delta(cursor)
        assert delta == {"D11/volume:D11": 9.0}
