"""Determinism regression: same scenario + same seed ⇒ bit-identical results.

Every registered scenario (paper figures and adversarial fault plans alike) is
run twice with the same seed; the structured :class:`RunResult` and the full
recorded event trace must match byte for byte.  Scenarios are scaled down so
the whole sweep stays fast — determinism does not depend on workload size.
"""

import json

import pytest

from repro.scenarios import ScenarioRunner, registry


def _unique_scenarios():
    seen = set()
    unique = []
    for name, scenario in registry.items():
        if id(scenario) in seen:
            continue  # bare figure names alias panel (a)
        seen.add(id(scenario))
        unique.append((name, scenario))
    return unique


def _scaled(scenario):
    return scenario.with_overrides(
        num_transactions=min(scenario.workload.num_transactions, 24),
        num_clients=min(scenario.num_clients, 4),
    )


@pytest.mark.parametrize(
    "name,scenario",
    _unique_scenarios(),
    ids=[name for name, _ in _unique_scenarios()],
)
def test_scenario_is_bit_identical_across_runs(name, scenario):
    runner = ScenarioRunner()
    scaled = _scaled(scenario)
    first = runner.execute(scaled)
    second = runner.execute(scaled)

    def canonical(result):
        return json.dumps(result.to_dict(), sort_keys=True)

    assert canonical(first.run()) == canonical(second.run())
    assert first.trace.to_json() == second.trace.to_json()
    assert (
        first.deployment.simulator.events_executed
        == second.deployment.simulator.events_executed
    )
