"""Byzantine adversary behaviors and the safety net around them.

The headline pair of tests is the equivocation story:

* with the **real** ``2f + 1`` quorum rule an equivocating PBFT primary is
  *survived* — every safety invariant holds over the whole run;
* with a **deliberately weakened** quorum rule (monkeypatched to 1) the same
  adversary splits the replicas' ledgers, and the :class:`InvariantChecker`
  *catches* it — proving the checker is not vacuous.
"""

import pytest

from repro.consensus.pbft import PbftEngine
from repro.faults import InvariantChecker
from repro.scenarios import ScenarioRunner, registry
from repro.scenarios.runner import materialize


def _run_unchecked(name: str):
    return ScenarioRunner().execute(registry.get(name))


class TestEquivocation:
    def test_equivocating_leader_is_survived_with_real_quorum(self):
        run = _run_unchecked("byz-equivocation")
        # The adversary really equivocated...
        assert run.trace.events("adversary:equivocate")
        # ...and honest replicas noticed the conflicting proposals...
        assert run.trace.events("equivocation-observed")
        # ...yet every safety invariant (and liveness) holds.
        report = InvariantChecker(run.deployment).check(expect_liveness=True)
        assert report.ok, [str(v) for v in report.violations]

    def test_weakened_quorum_lets_equivocation_split_the_domain(self, monkeypatch):
        # Checker self-test: sabotage the engine's quorum rule so a single
        # vote decides a slot, and run the same equivocation scenario.
        monkeypatch.setattr(PbftEngine, "quorum", property(lambda self: 1))
        scenario = registry.get("byz-equivocation")
        run = materialize(scenario)
        run.deployment.run_workload(
            run.workload.transactions,
            max_simulated_ms=30_000.0,
            think_time_ms=scenario.think_time_ms,
        )
        report = InvariantChecker(run.deployment).check()
        assert not report.ok
        # The same slot decided with two different payloads somewhere...
        assert report.of("conflicting-decide")
        # ...and none of those minority decisions is backed by a real quorum.
        assert report.of("decide-quorum")

    def test_forged_variant_never_commits_with_real_quorum(self):
        run = _run_unchecked("byz-equivocation")
        skew = 1_000_000.0
        for domain in run.deployment.hierarchy.height1_domains():
            for node in run.deployment.nodes_of(domain.id):
                for entry in node.ledger.entries():
                    amount = entry.transaction.payload.get("amount")
                    assert amount is None or amount < skew


class TestLeaderSilence:
    def test_silent_leader_is_viewed_out_and_run_stays_live(self):
        run = _run_unchecked("byz-leader-silence")
        assert run.trace.events("fault:silence")
        assert run.summary.pending == 0
        report = InvariantChecker(run.deployment).check(expect_liveness=True)
        assert report.ok, [str(v) for v in report.violations]

    def test_silenced_node_sends_nothing(self):
        scenario = registry.get("byz-leader-silence")
        run = materialize(scenario)
        deployment = run.deployment
        domain = next(
            d for d in deployment.hierarchy.height1_domains() if d.id.name == "D11"
        )
        primary = deployment.primary_node_of(domain.id)
        primary.adversary.silence()
        sent_before = deployment.network.stats.messages_sent
        primary.send(deployment.nodes_of(domain.id)[1].address, "hello")
        assert deployment.network.stats.messages_sent == sent_before
        primary.adversary.unsilence()
        primary.send(deployment.nodes_of(domain.id)[1].address, "hello")
        assert deployment.network.stats.messages_sent == sent_before + 1


class TestStaleCertificateReplay:
    def test_replay_is_ignored_and_safety_holds(self):
        run = _run_unchecked("byz-stale-certificate")
        replays = run.trace.events("adversary:stale-replay")
        assert replays, "the fault plan should have replayed a stale prepared"
        for event in replays:
            assert event.get("stale_sequence") is not None
        report = InvariantChecker(run.deployment).check(expect_liveness=True)
        assert report.ok, [str(v) for v in report.violations]

    def test_replay_without_prior_traffic_is_a_noop(self):
        run = materialize(registry.get("fig07a"))
        deployment = run.deployment
        domain = deployment.hierarchy.height1_domains()[0]
        node = deployment.primary_node_of(domain.id)
        assert node.adversary.replay_stale_certificate(node) is False


class TestPartitionAndLoss:
    def test_healed_partition_recovers_all_transactions(self):
        run = _run_unchecked("byz-partition-flap")
        kinds = run.trace.kinds()
        assert kinds.get("fault:partition") and kinds.get("fault:heal")
        assert kinds.get("fault:loss") and kinds.get("fault:loss-end")
        assert run.summary.pending == 0
        report = InvariantChecker(run.deployment).check(expect_liveness=True)
        assert report.ok, [str(v) for v in report.violations]

    def test_consensus_gap_recovery_left_evidence(self):
        # The loss burst wedges consensus slots; the engines' gap recovery
        # (SlotStatusQuery + retransmission) must have un-wedged them.
        run = _run_unchecked("byz-partition-flap")
        assert run.trace.events("gap-query")
        for domain in run.deployment.hierarchy.server_domains():
            for node in run.deployment.nodes_of(domain.id):
                assert not node.engine._log.has_gap, node.address


class TestCrashRecover:
    def test_recovered_replica_catches_up(self):
        run = _run_unchecked("byz-crash-recover")
        assert run.trace.events("fault:crash") and run.trace.events("fault:recover")
        report = InvariantChecker(run.deployment).check(expect_liveness=True)
        assert report.ok, [str(v) for v in report.violations]
