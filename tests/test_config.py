"""Unit tests for configuration dataclasses."""

import pytest

from repro.common.config import (
    DEFAULT_BYZANTINE_COSTS,
    DEFAULT_CRASH_COSTS,
    DeploymentConfig,
    DomainSpec,
    HierarchySpec,
    NodeCostModel,
    RoundConfig,
    TimerConfig,
    WorkloadConfig,
)
from repro.common.types import FailureModel
from repro.errors import ConfigurationError


class TestNodeCostModel:
    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeCostModel(base_handling_ms=-1.0)

    def test_certificate_cost_scales_with_signatures(self):
        model = NodeCostModel(verify_ms=0.5)
        assert model.certificate_verify_ms(3) == pytest.approx(1.5)

    def test_certificate_cost_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            NodeCostModel().certificate_verify_ms(-1)

    def test_byzantine_defaults_cost_more_than_crash(self):
        assert DEFAULT_BYZANTINE_COSTS.verify_ms > DEFAULT_CRASH_COSTS.verify_ms
        assert DEFAULT_BYZANTINE_COSTS.sign_ms > DEFAULT_CRASH_COSTS.sign_ms


class TestTimerAndRoundConfig:
    def test_timers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TimerConfig(request_timeout_ms=0)

    def test_round_interval_grows_with_height(self):
        rounds = RoundConfig(height1_interval_ms=50.0, interval_growth=2.0)
        assert rounds.interval_for_height(1) == 50.0
        assert rounds.interval_for_height(2) == 100.0
        assert rounds.interval_for_height(3) == 200.0

    def test_round_interval_rejects_height_zero(self):
        with pytest.raises(ConfigurationError):
            RoundConfig().interval_for_height(0)

    def test_interval_growth_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundConfig(interval_growth=0.5)


class TestDomainAndHierarchySpec:
    def test_domain_spec_node_count(self):
        assert DomainSpec(failure_model=FailureModel.CRASH, faults=2).num_nodes == 5
        assert DomainSpec(failure_model=FailureModel.BYZANTINE, faults=2).num_nodes == 7

    def test_negative_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            DomainSpec(faults=-1)

    def test_hierarchy_spec_height1_count(self):
        assert HierarchySpec(levels=4, branching=2).num_height1_domains == 4
        assert HierarchySpec(levels=3, branching=3).num_height1_domains == 3

    def test_hierarchy_spec_per_domain_override(self):
        override = DomainSpec(failure_model=FailureModel.BYZANTINE)
        spec = HierarchySpec(per_domain={"D21": override})
        assert spec.spec_for("D21") is override
        assert spec.spec_for("D11").failure_model is FailureModel.CRASH

    def test_hierarchy_needs_two_levels(self):
        with pytest.raises(ConfigurationError):
            HierarchySpec(levels=1)

    def test_deployment_config_costs_for(self):
        config = DeploymentConfig()
        assert config.costs_for(FailureModel.CRASH) is config.crash_costs
        assert config.costs_for(FailureModel.BYZANTINE) is config.byzantine_costs


class TestWorkloadConfig:
    def test_ratios_must_be_fractions(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(cross_domain_ratio=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(contention_ratio=-0.1)

    def test_hot_set_must_fit_in_accounts(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(accounts_per_domain=2, hot_accounts_per_domain=4)

    def test_cross_domain_needs_at_least_two_domains(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(involved_domains=1)

    def test_defaults_are_valid(self):
        config = WorkloadConfig()
        assert config.num_transactions > 0
        assert 0 <= config.cross_domain_ratio <= 1
