"""Tests for metrics collection and benchmark reporting helpers."""

import pytest

from repro.analysis.experiment import LoadPoint
from repro.analysis.metrics import MetricsCollector, PerformanceSummary
from repro.analysis.reporting import (
    format_load_series,
    format_mobile_table,
    format_series_table,
    format_summary_row,
    latency_at_peak,
    peak_throughput,
)
from repro.common.types import TransactionId, TransactionKind
from repro.errors import ExperimentError


def _tid(number):
    return TransactionId(number=number)


class TestMetricsCollector:
    def test_commit_latency_and_throughput(self):
        metrics = MetricsCollector()
        for number in range(1, 11):
            metrics.record_issue(_tid(number), TransactionKind.INTERNAL, issued_at=0.0)
            metrics.record_commit(_tid(number), committed_at=100.0)
        summary = metrics.summary()
        assert summary.committed == 10
        assert summary.avg_latency_ms == pytest.approx(100.0)
        assert summary.throughput_tps == pytest.approx(10 / 0.1)

    def test_double_issue_rejected(self):
        metrics = MetricsCollector()
        metrics.record_issue(_tid(1), TransactionKind.INTERNAL, 0.0)
        with pytest.raises(ExperimentError):
            metrics.record_issue(_tid(1), TransactionKind.INTERNAL, 1.0)

    def test_duplicate_commits_keep_first_timestamp(self):
        metrics = MetricsCollector()
        metrics.record_issue(_tid(1), TransactionKind.INTERNAL, 0.0)
        metrics.record_commit(_tid(1), 10.0)
        metrics.record_commit(_tid(1), 50.0)
        assert metrics.record(_tid(1)).latency_ms == 10.0

    def test_unknown_commit_and_abort_are_ignored(self):
        metrics = MetricsCollector()
        metrics.record_commit(_tid(9), 1.0)
        metrics.record_abort(_tid(9), 1.0)
        assert len(metrics) == 0

    def test_abort_excludes_from_committed(self):
        metrics = MetricsCollector()
        metrics.record_issue(_tid(1), TransactionKind.CROSS_DOMAIN, 0.0)
        metrics.record_commit(_tid(1), 5.0)
        metrics.record_abort(_tid(1), 20.0, reason="inconsistency")
        summary = metrics.summary()
        assert summary.committed == 0
        assert summary.aborted == 1
        assert summary.abort_rate == 1.0

    def test_pending_transactions_counted(self):
        metrics = MetricsCollector()
        metrics.record_issue(_tid(1), TransactionKind.INTERNAL, 0.0)
        metrics.record_issue(_tid(2), TransactionKind.INTERNAL, 0.0)
        metrics.record_commit(_tid(1), 5.0)
        assert metrics.summary().pending == 1

    def test_percentiles_are_ordered(self):
        metrics = MetricsCollector()
        for number in range(1, 101):
            metrics.record_issue(_tid(number), TransactionKind.INTERNAL, 0.0)
            metrics.record_commit(_tid(number), float(number))
        summary = metrics.summary()
        assert summary.p50_latency_ms <= summary.p95_latency_ms <= summary.p99_latency_ms
        assert summary.p50_latency_ms == pytest.approx(50.0)
        assert summary.p99_latency_ms == pytest.approx(99.0)

    def test_empty_summary_is_all_zero(self):
        summary = MetricsCollector().summary()
        assert summary.committed == 0
        assert summary.throughput_tps == 0.0
        assert summary.abort_rate == 0.0

    def test_as_dict_is_json_friendly(self):
        metrics = MetricsCollector()
        metrics.record_issue(_tid(1), TransactionKind.INTERNAL, 0.0)
        metrics.record_commit(_tid(1), 2.0)
        data = metrics.summary().as_dict()
        assert set(data) >= {"committed", "throughput_tps", "avg_latency_ms"}


def _point(clients, tput, latency):
    summary = PerformanceSummary(
        committed=100,
        aborted=0,
        pending=0,
        duration_ms=1000.0,
        throughput_tps=tput,
        avg_latency_ms=latency,
        p50_latency_ms=latency,
        p95_latency_ms=latency * 2,
        p99_latency_ms=latency * 3,
        abort_rate=0.0,
    )
    return LoadPoint(
        clients=clients,
        throughput_tps=tput,
        avg_latency_ms=latency,
        p95_latency_ms=latency * 2,
        abort_rate=0.0,
        summary=summary,
    )


class TestReporting:
    def test_peak_and_latency_at_peak(self):
        points = [_point(4, 100.0, 5.0), _point(16, 400.0, 9.0), _point(64, 380.0, 30.0)]
        assert peak_throughput(points) == 400.0
        assert latency_at_peak(points) == 9.0
        assert peak_throughput([]) == 0.0

    def test_format_load_series_mentions_every_point(self):
        text = format_load_series("Coordinator", [_point(4, 100.0, 5.0), _point(8, 200.0, 6.0)])
        assert "Coordinator" in text
        assert text.count("tps") == 2

    def test_format_series_table_has_summary_rows(self):
        table = format_series_table(
            {"AHL": [_point(4, 100.0, 5.0)], "Coordinator": [_point(4, 140.0, 5.0)]},
            title="Figure 7(a)",
        )
        assert "Figure 7(a)" in table
        assert "peak tput" in table
        assert "AHL" in table and "Coordinator" in table

    def test_format_summary_row(self):
        summary = _point(4, 120.0, 3.0).summary
        row = format_summary_row("Opt-10%C", summary)
        assert "Opt-10%C" in row and "120.0" in row

    def test_format_mobile_table_reports_drop_percentages(self):
        table = format_mobile_table(
            {
                "0% mobile": _point(4, 1000.0, 3.0).summary,
                "100% mobile": _point(4, 750.0, 4.0).summary,
            },
            title="Figure 9(a)",
        )
        assert "drop vs 0% mobile" in table
        assert "25.0%" in table
