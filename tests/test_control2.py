"""Control plane phase 2: conflict leases, shard splitting, load shedding.

Five layers of coverage:

* the configuration surface: phase-2 :class:`ControlPolicy` knobs require an
  adaptive policy, reject degenerate values, and survive the JSON round trip;
* unit tests for :meth:`StateStore.split_shard` (stable re-hash of only the
  parent's keys, write-log carry-over in version order, nested splits, the
  ``verify_partition`` audit catching corruption) and for the
  :class:`LaneRebalancer`'s ``blocked_shard`` report (the plane's split-or-
  back-off signal);
* checker self-tests: forged ``control:lease`` / ``control:split`` /
  ``control:shed`` traces that the ``lease-safety``, ``split-partition``,
  and ``shed-accounting`` invariant passes must flag (and legal traces they
  must not);
* end to end: the white-hot ``zipf-hot-split`` run splits and stays
  invariant-clean, the blocked rebalancer backs off exponentially instead of
  re-evaluating every window (the PR 6 livelock), ``lease-rejoin`` grants
  and adopts conflict leases, and a starved latency target flips the
  admission valve without losing a transaction;
* the differential gate: with every phase-2 knob off, 10 static and 10
  adaptive seeds are bit-identical (result and trace digests) to the PR 9
  tree, captured there before any phase-2 code existed.
"""

import hashlib
import json
from collections import Counter

import pytest

from repro.control.controllers import LaneRebalancer
from repro.control.policy import ControlPolicy
from repro.errors import ConfigurationError, StateError
from repro.faults import InvariantChecker, TraceRecorder
from repro.ledger.state import StateStore
from repro.scenarios import ScenarioRunner, registry
from tests.conftest import make_deployment


# ---------------------------------------------------------------------------
# Configuration surface
# ---------------------------------------------------------------------------


def test_phase2_knobs_require_an_adaptive_policy():
    for knob in ({"conflict_leases": True}, {"split_shards": True}, {"shed": True}):
        with pytest.raises(ConfigurationError):
            ControlPolicy(**knob)
    armed = ControlPolicy(
        policy="adaptive", conflict_leases=True, split_shards=True, shed=True
    )
    assert armed.enabled


def test_phase2_knobs_reject_degenerate_values():
    bad = (
        {"conflict_leases": True, "lease_ms": 0.0},
        {"conflict_leases": True, "lease_ms": float("inf")},
        {"split_shards": True, "split_after_blocked": 0},
        {"split_shards": True, "max_splits": 0},
        {"shed": True, "shed_after_windows": 0},
    )
    for kwargs in bad:
        with pytest.raises(ConfigurationError):
            ControlPolicy(policy="adaptive", **kwargs)


def test_phase2_policy_json_round_trip():
    policy = ControlPolicy(
        policy="adaptive",
        conflict_leases=True,
        lease_ms=123.0,
        split_shards=True,
        split_after_blocked=2,
        max_splits=5,
        shed=True,
        shed_after_windows=3,
    )
    data = policy.to_dict()
    for key in ("conflict_leases", "lease_ms", "split_shards", "shed"):
        assert key in data
    assert ControlPolicy.from_dict(data) == policy


def test_control2_scenario_family_is_registered():
    for name in registry.CONTROL2_SCENARIOS:
        registry.get(name)
    split = registry.get("zipf-hot-split")
    nosplit = registry.get("zipf-hot-nosplit")
    assert split.control.split_shards and split.control.conflict_leases
    assert not nosplit.control.split_shards
    assert split.workload.zipf_skew == registry.ZIPF_HOT_SKEW
    lease = registry.get("lease-rejoin")
    assert lease.control.conflict_leases
    assert lease.topology.branching == 3
    assert lease.workload.involved_domains == 3


def test_control2_smoke_mode_is_registered():
    from repro.faults.smoke import MODES

    assert "control2" in MODES


# ---------------------------------------------------------------------------
# Unit level: StateStore.split_shard
# ---------------------------------------------------------------------------


def _warm_store(shards=2, keys=48):
    store = StateStore(shards=shards)
    for index in range(keys):
        store.put(f"acct/{index:03d}", float(index))
    return store


def _hottest_shard(store):
    counts = store.shard_write_counts()
    return counts.index(max(counts))


def test_split_shard_rehashes_only_the_parents_keys():
    store = _warm_store(shards=4)
    before = {key: store.shard_of(key) for key in store.keys()}
    parent = _hottest_shard(store)
    child = store.split_shard(parent)
    assert child == 4  # first split appends past the base slots
    assert store.shard_count == 5
    assert store.base_shards == 4 and store.split_count == 1
    moved = 0
    for key, old in before.items():
        new = store.shard_of(key)
        if old != parent:
            assert new == old  # foreign shards are untouched
        else:
            assert new in (parent, child)
            moved += new == child
    assert moved > 0  # the split actually spread the range
    assert store.verify_partition() == ()


def test_split_preserves_content_versions_and_log_order():
    store = _warm_store(shards=2)
    values = {key: store.read(key) for key in store.keys()}
    version = store.version
    child = store.split_shard(0)
    assert store.version == version  # the counter never rewinds
    for key, value in values.items():
        assert store.read(key) == value
    # The global merged log is still one run of versions 1..N, and every
    # per-shard record now routes to the shard whose log holds it.
    log = store.write_log()
    assert [record.version for record in log] == list(range(1, version + 1))
    for shard in range(store.shard_count):
        for record in store.write_log(shards=[shard]):
            assert store.shard_of(record.key) == shard
    assert child == 2


def test_nested_splits_keep_the_partition_sound():
    store = _warm_store(shards=2, keys=96)
    first = store.split_shard(_hottest_shard(store))
    second = store.split_shard(first)  # split the child again
    third = store.split_shard(_hottest_shard(store))
    assert (first, second, third) == (2, 3, 4)
    assert store.split_count == 3 and store.shard_count == 5
    assert store.verify_partition() == ()
    store.put("acct/fresh", 1.0)  # post-split writes route consistently
    assert store.verify_partition() == ()


def test_split_rejects_out_of_range_shards():
    store = _warm_store()
    with pytest.raises(StateError):
        store.split_shard(99)
    with pytest.raises(StateError):
        store.split_shard(-1)


def test_verify_partition_catches_a_misrouted_record():
    store = _warm_store(shards=2)
    store.split_shard(0)
    donor = next(
        shard
        for shard in range(store.shard_count)
        if store.write_log(shards=[shard])
    )
    recipient = (donor + 1) % store.shard_count
    record = store._shards[donor].log.pop()
    store._shards[recipient].log.append(record)
    problems = store.verify_partition()
    assert problems  # the audit sees through the corrupted bookkeeping


# ---------------------------------------------------------------------------
# Unit level: the rebalancer's blocked-shard report
# ---------------------------------------------------------------------------


def test_rebalancer_reports_the_blocked_single_resident_shard():
    rebalancer = LaneRebalancer(ControlPolicy(policy="adaptive"))
    # Lane 0 is hot because of exactly one shard: no move helps, so the
    # rebalancer stays quiet but *reports* the shard for split-or-back-off.
    assert rebalancer.rebalance([30.0, 2.0], [29, 1, 1, 1], [0, 1, 1, 1]) == []
    assert rebalancer.blocked_shard == 0
    # A balanced call clears the report.
    assert rebalancer.rebalance([10.0, 10.0], [5, 5], [0, 1]) == []
    assert rebalancer.blocked_shard is None


# ---------------------------------------------------------------------------
# Checker self-tests: forged phase-2 traces
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def quiet_deployment():
    """An unexecuted deployment: real hierarchy/nodes, empty ledgers."""
    return make_deployment()


def _forge(deployment):
    domain = deployment.hierarchy.height1_domains()[0]
    nodes = [node.address for node in deployment.nodes_of(domain.id)]
    return domain.id.name, nodes, TraceRecorder()


def _lease(trace, at, domain, node, action, tid, **extra):
    trace.record(
        "control:lease", at_ms=at, domain=domain, node=node,
        tid=tid, action=action, coordinator="D19", **extra,
    )


class TestLeaseSafetyPass:
    def test_legal_lifecycle_passes(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        node = nodes[0]
        _lease(trace, 1.0, domain, node, "grant", "t1", lease_ms=50.0)
        trace.record("handoff:prepared", at_ms=2.0, domain=domain, node=node,
                     tid="t1", slot=7)
        trace.record("handoff:group-prepared", at_ms=2.0, domain=domain,
                     node=node, gid=5, slot=7, tids=["t2"])
        _lease(trace, 2.0, domain, node, "adopt", "t1", gid=5, slot=7)
        _lease(trace, 3.0, domain, node, "grant", "t2", lease_ms=50.0)
        _lease(trace, 4.0, domain, node, "expire", "t2")
        _lease(trace, 5.0, domain, node, "grant", "t3", lease_ms=50.0)
        _lease(trace, 6.0, domain, node, "drop", "t3")
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert "lease-safety" in report.checks_run
        assert not report.of("lease-safety")

    def test_resolution_without_a_grant_is_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        _lease(trace, 1.0, domain, nodes[0], "expire", "t1")
        _lease(trace, 2.0, domain, nodes[0], "adopt", "t2", gid=1, slot=3)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert len(report.of("lease-safety")) == 2

    def test_stacked_grant_is_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        _lease(trace, 1.0, domain, nodes[0], "grant", "t1", lease_ms=50.0)
        _lease(trace, 2.0, domain, nodes[0], "grant", "t1", lease_ms=50.0)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert report.of("lease-safety")

    def test_adoption_without_a_prepared_vote_is_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        _lease(trace, 1.0, domain, nodes[0], "grant", "t1", lease_ms=50.0)
        _lease(trace, 2.0, domain, nodes[0], "adopt", "t1", gid=5, slot=7)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert any(
            "handoff:prepared" in violation.detail
            for violation in report.of("lease-safety")
        )

    def test_adoption_on_the_wrong_slot_is_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        node = nodes[0]
        _lease(trace, 1.0, domain, node, "grant", "t1", lease_ms=50.0)
        trace.record("handoff:prepared", at_ms=2.0, domain=domain, node=node,
                     tid="t1", slot=7)
        trace.record("handoff:group-prepared", at_ms=2.0, domain=domain,
                     node=node, gid=5, slot=9, tids=["t2"])
        _lease(trace, 2.0, domain, node, "adopt", "t1", gid=5, slot=7)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert any(
            "slot" in violation.detail for violation in report.of("lease-safety")
        )


def _split(trace, at, domain, node, parent, child):
    trace.record("control:split", at_ms=at, domain=domain, node=node,
                 shard=parent, child=child, to_lane=0, streak=2,
                 writes_parent=10, writes_child=10)


class TestSplitPartitionPass:
    def test_wellformed_replicated_splits_pass(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        for node in nodes[:2]:
            _split(trace, 1.0, domain, node, 0, 2)
            _split(trace, 2.0, domain, node, 2, 3)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert "split-partition" in report.checks_run
        assert not report.of("split-partition")

    def test_child_index_reuse_and_self_split_are_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        _split(trace, 1.0, domain, nodes[0], 0, 2)
        _split(trace, 2.0, domain, nodes[0], 1, 2)  # reused child index
        _split(trace, 3.0, domain, nodes[0], 3, 3)  # parent == child
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert len(report.of("split-partition")) == 2

    def test_replica_split_divergence_is_flagged_when_fault_free(
        self, quiet_deployment
    ):
        domain, nodes, trace = _forge(quiet_deployment)
        _split(trace, 1.0, domain, nodes[0], 0, 2)
        _split(trace, 2.0, domain, nodes[0], 2, 3)
        _split(trace, 1.0, domain, nodes[1], 1, 2)  # different history
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert any(
            "prefix" in violation.detail
            for violation in report.of("split-partition")
        )

    def test_replica_divergence_is_excused_under_faults(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        _split(trace, 1.0, domain, nodes[0], 0, 2)
        _split(trace, 1.0, domain, nodes[1], 1, 2)
        trace.record("fault:wipe", at_ms=0.5, domain=domain, node=nodes[1])
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert not report.of("split-partition")


def _shed(trace, at, domain, node, action, **extra):
    trace.record("control:shed", at_ms=at, domain=domain, node=node,
                 action=action, **extra)


class TestShedAccountingPass:
    def test_legal_valve_cycle_passes(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        node = nodes[0]
        _shed(trace, 1.0, domain, node, "on", windows=4, decide_latency_ms=9.0)
        trace.record("control:shed", at_ms=2.0, domain=domain, node=node,
                     tid="t1", action="reject")
        _shed(trace, 3.0, domain, node, "off", decide_latency_ms=1.0)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert "shed-accounting" in report.checks_run
        assert not report.of("shed-accounting")

    def test_reject_while_the_valve_is_off_is_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        trace.record("control:shed", at_ms=1.0, domain=domain, node=nodes[0],
                     tid="t1", action="reject")
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert report.of("shed-accounting")

    def test_premature_valve_open_is_flagged(self, quiet_deployment):
        # The deployment's nodes run the default policy (shed_after_windows=4):
        # a valve that opened after fewer overrun windows jumped the gun.
        domain, nodes, trace = _forge(quiet_deployment)
        _shed(trace, 1.0, domain, nodes[0], "on", windows=2,
              decide_latency_ms=9.0)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert report.of("shed-accounting")

    def test_double_flips_are_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        node = nodes[0]
        _shed(trace, 1.0, domain, node, "on", windows=4, decide_latency_ms=9.0)
        _shed(trace, 2.0, domain, node, "on", windows=4, decide_latency_ms=9.0)
        _shed(trace, 3.0, domain, node, "off", decide_latency_ms=1.0)
        _shed(trace, 4.0, domain, node, "off", decide_latency_ms=1.0)
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert len(report.of("shed-accounting")) == 2

    def test_shedding_an_applied_transaction_is_flagged(self, quiet_deployment):
        domain, nodes, trace = _forge(quiet_deployment)
        node = nodes[0]
        trace.record("append", at_ms=0.5, domain=domain, node=node, tid="t1")
        _shed(trace, 1.0, domain, node, "on", windows=4, decide_latency_ms=9.0)
        trace.record("control:shed", at_ms=2.0, domain=domain, node=node,
                     tid="t1", action="reject")
        report = InvariantChecker(quiet_deployment, trace=trace).check()
        assert any(
            "already applied" in violation.detail
            for violation in report.of("shed-accounting")
        )


# ---------------------------------------------------------------------------
# End to end: splitting, back-off, leases, shedding
# ---------------------------------------------------------------------------


def _hot_run(name, **overrides):
    scenario = registry.get(name).with_overrides(
        num_transactions=300, **overrides
    )
    return ScenarioRunner(check_invariants=True).execute(scenario, seed=1)


def test_white_hot_run_splits_and_passes_invariants():
    run = _hot_run("zipf-hot-split")
    splits = run.trace.events("control:split")
    assert splits  # the blocked hot shard actually split
    for event in splits:
        assert event.get("shard") != event.get("child")
    # Replicas of one domain split identically (checker proves the prefix
    # rule; the full-equality case must hold here — no faults, no stragglers).
    by_node = {}
    for event in splits:
        by_node.setdefault(event.node, []).append(
            (event.get("shard"), event.get("child"))
        )
    domains = {}
    for node, sequence in by_node.items():
        domains.setdefault(node.split("/")[0], set()).add(tuple(sequence))
    assert all(len(histories) == 1 for histories in domains.values())
    assert run.summary.pending == 0


def test_blocked_rebalancer_backs_off_instead_of_livelocking():
    run = _hot_run("zipf-hot-nosplit")
    assert not run.trace.events("control:split")  # knob off -> no splits
    blocked = [
        (node, node.control)
        for node in run.deployment.nodes.values()
        if node.control is not None and node.control._blocked_streak > 0
    ]
    assert blocked  # the white-hot shard blocked the single-resident guard
    for node, plane in blocked:
        windows = node.simulator.now / plane.policy.interval_ms
        # Exponential back-off engaged and capped; without it the plane
        # would re-run the identical no-op evaluation every window.
        assert plane._backoff_exp == 5
        assert plane.rebalance_evals < windows / 8
        assert plane.splits == 0


def test_lease_rejoin_grants_and_adopts_leases():
    run = ScenarioRunner(check_invariants=True).execute(registry.get("lease-rejoin"))
    actions = Counter(
        event.get("action") for event in run.trace.events("control:lease")
    )
    assert actions["grant"] > 0
    assert actions["adopt"] > 0  # held members re-joined a following group
    assert actions["grant"] == (
        actions["adopt"] + actions["expire"] + actions["drop"]
    )
    assert run.summary.pending == 0


def test_starved_latency_target_flips_the_valve_without_losing_transactions():
    shedding = ControlPolicy(
        policy="adaptive",
        interval_ms=2.0,
        batch_increase=16,
        target_decide_latency_ms=0.5,  # unreachable: every window overruns
        shed=True,
        shed_after_windows=2,
    )
    run = _hot_run("zipf-hot-nosplit", control=shedding)
    actions = Counter(
        event.get("action") for event in run.trace.events("control:shed")
    )
    assert actions["on"] > 0 and actions["off"] > 0
    assert actions["reject"] > 0  # admissions were actually refused
    # The closed loop drains fully: every client got an answer for every
    # transaction, shed ones included (as failed replies, later retried).
    assert run.summary.pending == 0
    assert run.summary.committed + run.summary.aborted == 300


# ---------------------------------------------------------------------------
# Differential gate: phase-2 knobs off == the PR 9 tree, bit for bit
# ---------------------------------------------------------------------------

#: sha256 of (result json, trace json) for scaled zipf-sweep runs, captured
#: on the PR 9 tree (commit before any phase-2 code).  ``static`` pins the
#: untouched fast path; ``adaptive`` pins the live control plane with every
#: phase-2 knob at its off default.
PR9_DIFFERENTIAL_GOLDENS = {
    "static-1": ("12a270f0d2fb376b9d1f495379bc490e6714c8a87325578da1567c89a2fcf65d",
                 "560bb58bad80211e9e78b7472e6201a8b43b4808c6d67b40b8362585c8fd4977"),
    "static-2": ("1276153cf74bc798e50ea759761c0df4e4678b82b95bfecbd8c7a4a6a16ef803",
                 "6ecfc5034952df18d6e81f38c16bb8b93fd28affb0924b3df4bd4c221af22db1"),
    "static-3": ("7a2178eb398ca5541f305b228357baa40ff9071ab9031c4ff279b3a9c4b137a9",
                 "c72e908107b8f00098f4eaa59c887949bab28710d5644c574cceccd86a402660"),
    "static-4": ("3853603ded9287168c9eca4d1bdb2db8cf628095c75c7128183dfc4e5644de95",
                 "51e4186c271f64693b6995f584a31d38c525c6c72267c9ddd8033cc5955b4fc4"),
    "static-5": ("74920cab3c0577f345470a1707e5a93407660819e7274f60e9759c35aa9e081c",
                 "10d892744736016fed8bdd0635539fd7845414e9fdbc33ed6ec37441f3b4a2ac"),
    "static-6": ("99b7a1ba36f54d8312f85bf19b06d470a2ab2e6b68764846e1cd85fc5389fef0",
                 "3831f5e0b008ba3a073cd946e76f634fb5f2010d5df7c7f2230917e2505a76f7"),
    "static-7": ("c57b4290a310ddd2adc8780a6889f8fca0cd982091c53be48fa5a94e79cd5c0f",
                 "434aa595cf0c3815b45d23381d0b9628a56f05fc1fb0c6b5573d862e4223ed69"),
    "static-8": ("e93d4bae1a38412b96b45234417263a16add1b1ae3066e86ba97cc155297acb6",
                 "2d5e88a750846de7a0f61f6e3cf4e6f267f9cb773d235fa2e59b70dd45e0a607"),
    "static-9": ("faa1407cb5277d1858e068b45ad1ac4d7ea9c1564cbfc1c2e16f2103a4ea4ef5",
                 "977cf5f0c0a313336e61381920cd937f31d86ff512131cd035894e0a1df5c167"),
    "static-10": ("04c22b43a2a1f4e8903aec080ec3b0e62e555cc03777334087af469bb08d1998",
                  "1e87a70bb94db3f36b010bc5d3e9d5cfb3ac0c3e8f07886ba5ab4b51699fbd0d"),
    "adaptive-1": ("2b273e53f7d9a9c08cf6c00f0f1ad4c4ae4732f8466e2085f5923dd505db0eb0",
                   "e0e473634e2ef23aad40b53c2c3d559552d755021de3e69083f8e7dfc7005378"),
    "adaptive-2": ("709e4bd65f0fc25d55e7f3aa58f11fc987fd22c436298291ed8d3df258a7fe77",
                   "f032ed82a60c2b5ae0e0b67884ad52a582490685e2d45b1db7b544e5ed4b7d30"),
    "adaptive-3": ("c361427c821c0ed541bf98b7e9dbada40b86f5ec893786955527a43902601b91",
                   "f3bf546e1275596f9dd71bf936bb85106fda8d722f3e87fa0238987c96fd7e76"),
    "adaptive-4": ("0db330d262ce00c181f2b2645fef1415ab60c69635021274251573094aec46cc",
                   "4dbe6a75782bda0a6c6ae98ce254cd156864ac9c1ff68816f72ba791cadfbbc6"),
    "adaptive-5": ("a015fb3891c0011f541016a7e1fdb00fc5b3490b58f9472011e9b04729d216ac",
                   "7593edf62ecb7cd492d6192d7fd26238a868cbd4c8f15b928afaefe2e6891d39"),
    "adaptive-6": ("8cb9fc0a7808b990e73b993471597092b828891e5add3475904ab4ed4f3c1538",
                   "93b8d8311399500d407a00001e24ff6776d3a024ed839a56aaa6b31839baf15d"),
    "adaptive-7": ("1be2d5d43312b6a34aa993cefad513c737f474b137746b43071d0f6acd175a4c",
                   "3a9a22361609f481a97fd79d0b160289e631688b594db9c2ad31ddb3f654d402"),
    "adaptive-8": ("b5a301dc2a0aae43dfe32b770f02ae79529d36048fde0bc7d03285886365ca0b",
                   "3372e86dd1aae43b78d33df5c407c715c791964f846ff5ec7d11ef635eda9348"),
    "adaptive-9": ("aa745590f6921941297bbb75c1f1e8d7338cd39ea423ae1218a8e2d49968040e",
                   "c93957ae6b898769b5b666404026d6f2196d0faa68d7166539f337af1054d19d"),
    "adaptive-10": ("ae1203d0251ee186d59e904cceaab7c9fff14789c9ba6b5d835b9d138cd46280",
                    "f4a28cc97252a54cf7fc0ab8e9d46f52fdcec6de88faabb01143409eb6898492"),
}


@pytest.mark.parametrize("key", sorted(PR9_DIFFERENTIAL_GOLDENS))
def test_phase2_off_is_bit_identical_to_the_pr9_tree(key):
    kind, seed = key.rsplit("-", 1)
    name, ntx, ncl = (
        ("zipf-sweep", 24, 4) if kind == "static" else ("zipf-sweep-adaptive", 48, 8)
    )
    scenario = registry.get(name).with_overrides(
        num_transactions=ntx, num_clients=ncl
    )
    run = ScenarioRunner().execute(scenario, seed=int(seed))
    result_digest = hashlib.sha256(
        json.dumps(run.run().to_dict(), sort_keys=True).encode()
    ).hexdigest()
    trace_digest = hashlib.sha256(run.trace.to_json().encode()).hexdigest()
    assert (result_digest, trace_digest) == PR9_DIFFERENTIAL_GOLDENS[key]
    # And no phase-2 event ever leaks into a knobs-off run.
    for kind_ in ("control:lease", "control:split", "control:shed"):
        assert not run.trace.events(kind_)
