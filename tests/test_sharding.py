"""Sharded state stores & parallel execution lanes: semantics, knobs, goldens.

Five layers of coverage:

* unit tests for the sharded :class:`~repro.ledger.state.StateStore`
  (stable key→shard hash, per-shard write logs, merged ``delta_since`` /
  ``write_log`` slices, shard-restricted extraction, empty shards);
* unit tests for :class:`~repro.sim.cpu.ExecutionLanes` (span = max over
  lanes, lane accounting, the ``lanes=1`` no-op);
* the scenario-spec surface (validation, JSON round-trip, builder
  ``.sharding()``, sweeps, the registered ``shard-sweep`` family);
* node-level lane charging edge cases: a transaction spanning every shard,
  and the optimistic protocol's undo crossing shards;
* a golden regression pinning ``state_shards=1, execution_lanes=1`` to the
  *pre-change* seed behaviour bit for bit, plus a randomized differential
  test asserting sharded and unsharded runs agree on every outcome.
"""

import hashlib
import json

import pytest

from repro.common.config import DeploymentConfig
from repro.common.types import CrossDomainProtocol, DomainId
from repro.errors import ConfigurationError, SimulationError, StateError
from repro.ledger.state import StateStore, shard_of_key
from repro.scenarios import Scenario, ScenarioRunner, registry
from repro.sim.cpu import ExecutionLanes

D01 = DomainId(0, 1)
D11, D12 = DomainId(1, 1), DomainId(1, 2)


# ---------------------------------------------------------------------------
# Unit level: sharded StateStore
# ---------------------------------------------------------------------------


def _mirrored_stores(shards, writes):
    """The same write sequence applied to an unsharded and a sharded store."""
    plain, sharded = StateStore("plain"), StateStore("sharded", shards=shards)
    for key, value in writes:
        plain.put(key, value)
        sharded.put(key, value)
    return plain, sharded


def _random_writes(count=200, keys=40, seed=7):
    import random

    rng = random.Random(seed)
    return [
        (f"acct:{rng.randrange(keys):03d}", rng.randrange(1_000))
        for _ in range(count)
    ]


def test_shard_of_is_stable_and_in_range():
    store = StateStore("s", shards=8)
    for key in ("a", "acct:001", "hours:driver-7", ""):
        shard = store.shard_of(key)
        assert 0 <= shard < 8
        assert shard == store.shard_of(key)  # deterministic
        assert shard == shard_of_key(key, 8)  # module-level hash agrees
    assert shard_of_key("anything", 1) == 0
    single = StateStore("one")
    assert single.shard_count == 1 and single.shard_of("anything") == 0


def test_shards_of_returns_sorted_distinct_footprint():
    store = StateStore("s", shards=16)
    keys = [f"k{i}" for i in range(64)]
    footprint = store.shards_of(keys)
    assert footprint == tuple(sorted(set(store.shard_of(k) for k in keys)))
    assert store.shards_of(()) == ()


@pytest.mark.parametrize("shards", [2, 5, 16])
def test_merged_delta_and_write_log_match_unsharded(shards):
    """Merged-slice semantics: any shard count reproduces the single log."""
    plain, sharded = _mirrored_stores(shards, _random_writes())
    assert sharded.version == plain.version
    assert sharded.snapshot() == plain.snapshot()
    for since in (0, 1, 57, plain.version - 1, plain.version):
        assert sharded.delta_since(since) == plain.delta_since(since)
        # Same records, same (version) order — not just the same set.
        assert sharded.write_log(since) == plain.write_log(since)
    assert list(sharded.keys()) == list(plain.keys())


def test_per_shard_logs_partition_the_merged_log():
    _, sharded = _mirrored_stores(8, _random_writes())
    per_shard = [sharded.write_log(shards=[i]) for i in range(8)]
    assert sum(len(part) for part in per_shard) == sharded.version
    assert sharded.shard_write_counts() == tuple(len(p) for p in per_shard)
    for index, part in enumerate(per_shard):
        assert all(sharded.shard_of(r.key) == index for r in part)
        # Each shard's log is version-sorted.
        assert [r.version for r in part] == sorted(r.version for r in part)
    merged = sorted(
        (record for part in per_shard for record in part),
        key=lambda record: record.version,
    )
    assert tuple(merged) == sharded.write_log()


def test_shard_restricted_delta_touches_only_named_shards():
    _, sharded = _mirrored_stores(8, _random_writes())
    full = sharded.delta_since(0)
    for subset in ([0], [3, 5], list(range(8))):
        restricted = sharded.delta_since(0, shards=subset)
        expected = {
            key: value
            for key, value in full.items()
            if sharded.shard_of(key) in set(subset)
        }
        assert restricted == expected


def test_empty_shard_domains_are_harmless():
    """More shards than keys: empty shards contribute nothing anywhere."""
    store = StateStore("sparse", shards=64)
    store.put("only", 1)
    store.put("keys", 2)
    occupied = {store.shard_of("only"), store.shard_of("keys")}
    for shard in range(64):
        expected = (
            tuple(k for k in ("only", "keys") if store.shard_of(k) == shard)
            if shard in occupied
            else ()
        )
        assert store.keys_of_shard(shard) == expected
    assert store.delta_since(0) == {"only": 1, "keys": 2}
    assert len(store.write_log()) == 2
    empty = next(s for s in range(64) if s not in occupied)
    assert store.delta_since(0, shards=[empty]) == {}


def test_restore_spans_shards_and_keeps_delta_semantics():
    _, sharded = _mirrored_stores(4, _random_writes(count=30, keys=10))
    snapshot = sharded.snapshot()
    version = sharded.version
    sharded.put("acct:000", -1)
    sharded.put("extra", 99)
    sharded.restore(snapshot)
    assert sharded.snapshot() == snapshot
    delta = sharded.delta_since(version)
    # Every key disturbed after the snapshot shows its restored value.
    assert delta["acct:000"] == snapshot["acct:000"]
    assert delta["extra"] is None and "extra" not in sharded


def test_state_store_validates_shard_arguments():
    with pytest.raises(StateError):
        StateStore("bad", shards=0)
    store = StateStore("s", shards=4)
    with pytest.raises(StateError):
        store.keys_of_shard(4)
    with pytest.raises(StateError):
        store.write_log(shards=[7])
    with pytest.raises(StateError):
        store.delta_since(99)


# ---------------------------------------------------------------------------
# Unit level: ExecutionLanes
# ---------------------------------------------------------------------------


def test_execution_lanes_span_is_max_over_lanes():
    lanes = ExecutionLanes(4)
    assert lanes.enabled
    span = lanes.span_of({0: 1.0, 1: 3.0, 3: 2.0})
    assert span == 3.0
    assert lanes.serial_ms_total == 6.0
    assert lanes.span_ms_total == 3.0
    assert lanes.lane_busy_ms == (1.0, 3.0, 0.0, 2.0)
    assert lanes.batches_charged == 1
    assert lanes.parallelism() == 2.0


def test_execution_lanes_single_lane_is_disabled_and_serial():
    lanes = ExecutionLanes(1)
    assert not lanes.enabled
    assert lanes.span_of({0: 2.5}) == 2.5  # still accounts if charged
    assert lanes.parallelism() == 1.0


def test_execution_lanes_lane_of_round_robin_and_validation():
    lanes = ExecutionLanes(4)
    assert [lanes.lane_of(s) for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    with pytest.raises(SimulationError):
        ExecutionLanes(0)
    with pytest.raises(SimulationError):
        lanes.lane_of(-1)
    with pytest.raises(SimulationError):
        lanes.span_of({4: 1.0})
    with pytest.raises(SimulationError):
        lanes.span_of({0: -1.0})
    assert lanes.span_of({}) == 0.0
    assert lanes.batches_charged == 0


# ---------------------------------------------------------------------------
# Spec surface
# ---------------------------------------------------------------------------


def test_scenario_sharding_knobs_round_trip_and_validate():
    scenario = Scenario.build().sharding(8, execution_lanes=4).finish()
    assert scenario.state_shards == 8
    assert scenario.execution_lanes == 4
    assert Scenario.from_json(scenario.to_json()) == scenario
    assert "shards=8" in scenario.describe()
    config = scenario.deployment_config(seed=1)
    assert config.state_shards == 8
    assert config.execution_lanes == 4
    # lanes default to the shard count
    assert Scenario.build().sharding(16).finish().execution_lanes == 16
    for bad in (dict(state_shards=0), dict(execution_lanes=0),
                dict(state_shards=2.5), dict(execution_lanes=True)):
        with pytest.raises(ConfigurationError):
            Scenario(**bad)
    with pytest.raises(ConfigurationError):
        DeploymentConfig(state_shards=0)
    with pytest.raises(ConfigurationError):
        DeploymentConfig(execution_lanes=0)


def test_sharding_sweeps_through_overrides():
    base = registry.get("fig07a")
    derived = base.with_overrides(state_shards=4, execution_lanes=2)
    assert derived.state_shards == 4 and derived.execution_lanes == 2
    assert base.state_shards == 1  # default untouched


def test_shard_sweep_family_is_registered():
    assert registry.get("shard-sweep").state_shards == 1
    for shards in registry.SHARD_SWEEP_SIZES:
        scenario = registry.get(f"shard-sweep-s{shards:03d}")
        assert scenario.state_shards == shards
        assert scenario.execution_lanes == registry.SHARD_SWEEP_LANES
        assert scenario.batch_size > 1  # the execution-bound regime


def test_shard_smoke_mode_is_registered_and_well_formed():
    from repro.faults import smoke

    assert "shard" in smoke.MODES
    scenarios = smoke.MODES["shard"]()
    assert scenarios
    for scenario in scenarios:
        assert scenario.state_shards > 1 and scenario.execution_lanes > 1


# ---------------------------------------------------------------------------
# Node level: lane charging edge cases
# ---------------------------------------------------------------------------


def _sharded_deployment(protocol=CrossDomainProtocol.COORDINATOR, **knobs):
    from repro.common.config import DomainSpec, HierarchySpec
    from repro.core.system import SaguaroDeployment
    from repro.topology.builders import build_tree
    from repro.topology.regions import placement_for_profile
    from repro.workloads.micropayment import MicropaymentApplication

    config = DeploymentConfig(
        hierarchy=HierarchySpec(default_spec=DomainSpec()),
        protocol=protocol,
        seed=11,
        **knobs,
    )
    hierarchy = build_tree(config.hierarchy)
    placement_for_profile(hierarchy, config.latency_profile)
    return SaguaroDeployment(
        config, MicropaymentApplication(accounts_per_domain=32), hierarchy
    )


def _keys_covering_all_shards(state):
    """One existing key per shard (skipping shards with no accounts)."""
    chosen = {}
    for key in state.keys():
        chosen.setdefault(state.shard_of(key), key)
    return chosen


def test_transaction_spanning_all_shards_occupies_every_lane():
    deployment = _sharded_deployment(state_shards=4, execution_lanes=4)
    node = deployment.primary_node_of(D11)
    per_shard = _keys_covering_all_shards(node.state)
    assert len(per_shard) == 4, "expected accounts in every shard"
    from repro.common.types import TransactionId, TransactionKind
    from repro.ledger.transaction import Transaction

    spanning = Transaction(
        tid=TransactionId(number=77_001),
        kind=TransactionKind.INTERNAL,
        involved_domains=(D11,),
        payload={"op": "noop"},
        read_keys=tuple(per_shard.values()),
        write_keys=(),
    )
    busy_before = node.cpu.busy_until
    node.execute_once(spanning)
    assert node.lanes.batches_charged == 1
    # The footprint covers all 4 shards, so all 4 lanes carry work and the
    # span is one per-key charge plus the per-transaction verify.
    assert all(ms > 0 for ms in node.lanes.lane_busy_ms)
    expected_span = node.costs.execute_ms + node.costs.verify_ms
    assert node.lanes.span_ms_total == pytest.approx(expected_span)
    assert node.lanes.serial_ms_total == pytest.approx(
        4 * node.costs.execute_ms + node.costs.verify_ms
    )
    assert node.cpu.busy_until == pytest.approx(busy_before + expected_span, abs=1e-9)


def test_execution_is_free_with_single_lane():
    deployment = _sharded_deployment(state_shards=4, execution_lanes=1)
    node = deployment.primary_node_of(D11)
    from tests.conftest import internal_transfer

    busy_before = node.cpu.busy_until
    node.execute_once(internal_transfer(D11))
    assert node.cpu.busy_until == busy_before  # bit-identical: no charge
    assert node.lanes.batches_charged == 0


def test_optimistic_undo_crosses_shards():
    """Rolling back an optimistic victim restores keys in *different* shards."""
    from repro.core.messages import OptimisticOrder
    from repro.core.optimistic import OptimisticCrossDomainProtocol

    deployment = _sharded_deployment(
        protocol=CrossDomainProtocol.OPTIMISTIC, state_shards=8, execution_lanes=8
    )
    node = deployment.primary_node_of(D11)
    component = next(
        c for c in node.components if isinstance(c, OptimisticCrossDomainProtocol)
    )
    # Two *local* accounts living in distinct shards: the rollback must then
    # restore keys across two different shards of the same store.
    from repro.common.types import TransactionKind
    from repro.ledger.transaction import Transaction
    from repro.workloads.micropayment import account_key
    from tests.conftest import make_tid

    sender, recipient = next(
        (account_key(D11, i), account_key(D11, j))
        for i in range(8)
        for j in range(8)
        if i != j
        and node.state.shard_of(account_key(D11, i))
        != node.state.shard_of(account_key(D11, j))
    )
    tx = Transaction(
        tid=make_tid(),
        kind=TransactionKind.CROSS_DOMAIN,
        involved_domains=(D11, D12),
        payload={"op": "transfer", "sender": sender, "recipient": recipient, "amount": 5.0},
        read_keys=(sender, recipient),
        write_keys=(sender, recipient),
    )
    assert len(node.state.shards_of(tx.write_keys)) == 2
    before = {key: node.state.get(key) for key in tx.write_keys}
    component._decided_order(
        OptimisticOrder(transaction=tx, initiator_domain=D11, client_address="probe")
    )
    assert tx.tid in component.pending_transactions()
    # The taint index spans both shards the transaction wrote, and the
    # balances actually moved before the rollback.
    assert len(component._root_shards[tx.tid]) == 2
    assert node.state.get(sender) == before[sender] - 5.0
    assert node.state.get(recipient) == before[recipient] + 5.0
    component._abort_locally(tx.tid, reason="test")
    after = {key: node.state.get(key) for key in tx.write_keys}
    assert after == before
    # Undo cleanup cleared the per-shard taint index completely.
    assert tx.tid not in component._root_shards
    assert all(
        tx.tid not in owners
        for bucket in component._tainted_by_shard.values()
        for owners in bucket.values()
    )


# ---------------------------------------------------------------------------
# Golden regression: shards=1, lanes=1 is bit-identical to the pre-change seed
# ---------------------------------------------------------------------------

#: Digests recorded at the commit *before* the sharding/lane change landed
#: (scenarios scaled down; explicit state_shards=1, execution_lanes=1).
PRE_SHARDING_GOLDENS = {
    "fig10a": {
        "overrides": dict(num_transactions=24, num_clients=4),
        "result_sha256": "ddb3a0a244c603e5870d1949d8e2b62396563ea33a6d5cfce4755b20da8f810c",
        "trace_sha256": "aec7aa7a7a42810f828c7e85be5ea6f4b059d615b7227693cf24815b48531928",
        "events_executed": 39558,
    },
    "batch-sweep-b032": {
        "overrides": dict(num_transactions=48, num_clients=8),
        "result_sha256": "50f6011f2748769df2da2156aee7a99a3f114d375899f64e713b9dad350c5389",
        "trace_sha256": "2ad1168078d34616dd27acbed090fe814f5a7dd5ddece3640614caf55c2d858f",
        "events_executed": 185083,
    },
}


@pytest.mark.parametrize("name", sorted(PRE_SHARDING_GOLDENS))
def test_unsharded_single_lane_matches_pre_change_goldens(name):
    golden = PRE_SHARDING_GOLDENS[name]
    scenario = registry.get(name).with_overrides(
        state_shards=1, execution_lanes=1, **golden["overrides"]
    )
    run = ScenarioRunner().execute(scenario)
    result_digest = hashlib.sha256(
        json.dumps(run.run().to_dict(), sort_keys=True).encode()
    ).hexdigest()
    trace_digest = hashlib.sha256(run.trace.to_json().encode()).hexdigest()
    assert result_digest == golden["result_sha256"]
    assert trace_digest == golden["trace_sha256"]
    assert run.deployment.simulator.events_executed == golden["events_executed"]


# ---------------------------------------------------------------------------
# Randomized differential: sharded == unsharded, outcome for outcome
# ---------------------------------------------------------------------------

#: ~10 seeds spread across an internal-heavy figure, the wide-area figure,
#: and a hostile fault-plan scenario.
_DIFFERENTIAL_CASES = [
    ("fig07a", seed) for seed in (2023, 2024, 2025, 2026)
] + [
    ("fig10a", seed) for seed in (2023, 2024, 2025)
] + [
    ("byz-equivocation", seed) for seed in (2023, 2024, 2025)
]


@pytest.mark.parametrize("name,seed", _DIFFERENTIAL_CASES)
def test_sharded_and_unsharded_runs_agree(name, seed):
    """state_shards>1 must not change any outcome: same commits, same aborts,
    same final balances, and the sharded run passes full invariant checking."""
    base = registry.get(name).with_overrides(
        num_transactions=24, num_clients=4, seed=seed
    )
    runner = ScenarioRunner()
    plain = runner.execute(base)
    sharded = runner.execute(base.with_overrides(state_shards=8))
    assert json.dumps(plain.run().to_dict(), sort_keys=True) == json.dumps(
        sharded.run().to_dict(), sort_keys=True
    )
    for domain in plain.deployment.hierarchy.height1_domains():
        plain_state = plain.deployment.state_of(domain.id)
        sharded_state = sharded.deployment.state_of(domain.id)
        assert sharded_state.snapshot() == plain_state.snapshot()
        assert sharded_state.shard_count == 8
    sharded.check_invariants()
