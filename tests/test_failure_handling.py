"""Failure-handling integration tests: crashed primaries and lost messages (§4.2)."""

import pytest

from repro.common.types import ClientId, DomainId
from tests.conftest import internal_transfer, make_deployment

D01, D11, D12 = DomainId(0, 1), DomainId(1, 1), DomainId(1, 2)


class TestPrimaryFailure:
    def test_internal_transaction_survives_a_crashed_primary(self):
        """Client retransmission + view change eventually commit the request."""
        deployment = make_deployment()
        client_id = ClientId(home=D01, index=1)
        tx = internal_transfer(D11, client=client_id)

        old_primary = deployment.primary_node_of(D11)
        old_primary.crash()

        deployment.start()
        clients = deployment.create_clients([tx], think_time_ms=0.0)
        for client in clients:
            client.start()
        # Give the client time to: time out, multicast to all replicas, have the
        # replicas suspect the primary, elect a new one, and retransmit again.
        deployment.simulator.run(
            until_ms=30_000.0, stop_when=lambda: clients[0].done
        )
        # Let in-flight learn/commit messages drain before inspecting replicas.
        deployment.simulator.run(until_ms=deployment.simulator.now + 500.0)
        deployment.stop_rounds()

        assert clients[0].done
        replicas = [n for n in deployment.nodes_of(D11) if n is not old_primary]
        assert any(tx.tid in replica.ledger for replica in replicas)
        for replica in replicas:
            assert replica.engine.view >= 1  # the faulty primary was replaced
        # A replica took over as primary in a later view.
        assert any(replica.is_primary for replica in replicas)
        assert old_primary.crashed

    def test_crashed_replica_does_not_block_commitment(self):
        deployment = make_deployment()
        client_id = ClientId(home=D01, index=1)
        transactions = [
            internal_transfer(D11, sender_index=i, recipient_index=i + 1, client=client_id)
            for i in range(4)
        ]
        # Crash one replica (f = 1 is tolerated by a 3-node crash domain).
        deployment.nodes_of(D11)[2].crash()
        summary = deployment.run_workload(transactions, drain_ms=300.0)
        assert summary.committed == len(transactions)

    def test_view_change_keeps_exactly_one_primary_per_domain(self):
        deployment = make_deployment()
        deployment.primary_node_of(D11).crash()
        client_id = ClientId(home=D01, index=1)
        tx = internal_transfer(D11, client=client_id)
        deployment.start()
        clients = deployment.create_clients([tx], think_time_ms=0.0)
        for client in clients:
            client.start()
        deployment.simulator.run(until_ms=30_000.0, stop_when=lambda: clients[0].done)
        deployment.stop_rounds()
        live_primaries = [
            node
            for node in deployment.nodes_of(D11)
            if not node.crashed and node.is_primary
        ]
        assert len(live_primaries) == 1


class TestMessageLoss:
    def test_cross_domain_commit_query_recovers_a_lost_commit(self):
        """A participant that misses the commit asks the coordinator (§4.2)."""
        deployment = make_deployment()
        client_id = ClientId(home=D01, index=1)
        tx = cross = internal_transfer(D11, client=client_id)
        # Use a cross-domain transaction so a commit message exists to lose.
        from tests.conftest import cross_transfer

        cross = cross_transfer((D11, D12), client=client_id)
        coordinator_primary = deployment.primary_node_of(DomainId(2, 1))
        d12_nodes = deployment.nodes_of(D12)
        # Drop the direct links coordinator-primary -> D12 nodes so the first
        # commit multicast is lost for that domain.
        for node in d12_nodes:
            deployment.network.partition(coordinator_primary.address, node.address)

        deployment.start()
        clients = deployment.create_clients([cross], think_time_ms=0.0)
        for client in clients:
            client.start()
        deployment.simulator.run(until_ms=300.0)
        # Heal; the pending commit-query timer at D12 re-fetches the decision.
        for node in d12_nodes:
            deployment.network.heal(coordinator_primary.address, node.address)
        deployment.simulator.run(until_ms=10_000.0, stop_when=lambda: clients[0].done)
        # Drain so the re-sent commit reaches every D12 replica before we check.
        deployment.simulator.run(until_ms=deployment.simulator.now + 500.0)
        deployment.stop_rounds()
        assert cross.tid in deployment.ledger_of(D12)
        assert cross.tid in deployment.ledger_of(D11)

    def test_lossy_network_still_commits_internal_transactions(self):
        """Retransmissions mask a small uniform message-loss rate."""
        deployment = make_deployment(seed=23)
        deployment.network._drop_rate = 0.02
        client_id = ClientId(home=D01, index=1)
        transactions = [
            internal_transfer(D11, sender_index=i, recipient_index=i + 1, client=client_id)
            for i in range(5)
        ]
        summary = deployment.run_workload(
            transactions, max_simulated_ms=60_000.0, drain_ms=300.0
        )
        assert summary.committed == len(transactions)
