"""Integration tests: internal transactions and lazy propagation (§4, §5)."""

import pytest

from repro.common.types import ClientId, DomainId, TransactionStatus
from tests.conftest import (
    height1_ids,
    internal_transfer,
    make_deployment,
)

D01 = DomainId(0, 1)
D11 = DomainId(1, 1)


def _run_internal_workload(deployment, per_domain=6):
    """Issue ``per_domain`` internal transfers in every height-1 domain."""
    transactions = []
    for leaf in deployment.hierarchy.leaf_domains():
        client = ClientId(home=leaf.id, index=1)
        domain = deployment.hierarchy.parent_height1_of_leaf(leaf.id).id
        for i in range(per_domain):
            transactions.append(
                internal_transfer(domain, sender_index=i, recipient_index=i + 1, client=client)
            )
    summary = deployment.run_workload(transactions, drain_ms=400.0)
    return transactions, summary


class TestInternalTransactions:
    def test_all_internal_transactions_commit(self, coordinator_deployment):
        transactions, summary = _run_internal_workload(coordinator_deployment)
        assert summary.committed == len(transactions)
        assert summary.aborted == 0

    def test_every_replica_has_the_same_ledger(self, coordinator_deployment):
        _run_internal_workload(coordinator_deployment)
        for domain in coordinator_deployment.hierarchy.height1_domains():
            ledgers = [
                node.ledger.committed_order()
                for node in coordinator_deployment.nodes_of(domain.id)
            ]
            assert all(order == ledgers[0] for order in ledgers)
            assert len(ledgers[0]) == 6

    def test_ledgers_verify_their_hash_chains(self, coordinator_deployment):
        _run_internal_workload(coordinator_deployment)
        for domain in coordinator_deployment.hierarchy.height1_domains():
            for node in coordinator_deployment.nodes_of(domain.id):
                assert node.ledger.verify_integrity()

    def test_transfers_applied_to_state(self, coordinator_deployment):
        transactions, _ = _run_internal_workload(coordinator_deployment)
        state = coordinator_deployment.state_of(D11)
        # Money is conserved within the domain.
        total = sum(
            state.balance(f"acct:D11:{i}") for i in range(32)
        )
        assert total == pytest.approx(32 * 1_000_000.0)

    def test_replicas_state_matches_primary(self, coordinator_deployment):
        _run_internal_workload(coordinator_deployment)
        for domain in coordinator_deployment.hierarchy.height1_domains():
            nodes = coordinator_deployment.nodes_of(domain.id)
            snapshots = [node.state.snapshot() for node in nodes]
            assert all(snapshot == snapshots[0] for snapshot in snapshots)

    def test_byzantine_domains_also_commit(self, byzantine_deployment):
        transactions, summary = _run_internal_workload(byzantine_deployment, per_domain=3)
        assert summary.committed == len(transactions)

    def test_latency_is_recorded_for_each_commit(self, coordinator_deployment):
        _, summary = _run_internal_workload(coordinator_deployment)
        assert summary.avg_latency_ms > 0
        assert summary.p95_latency_ms >= summary.p50_latency_ms


class TestLazyPropagation:
    def test_block_messages_reach_parents_and_root(self, coordinator_deployment):
        transactions, _ = _run_internal_workload(coordinator_deployment)
        root = coordinator_deployment.primary_node_of(
            coordinator_deployment.hierarchy.root.id
        )
        assert len(root.dag) == len(transactions)

    def test_height2_dags_only_hold_their_subtrees(self, coordinator_deployment):
        _run_internal_workload(coordinator_deployment)
        d21 = coordinator_deployment.primary_node_of(DomainId(2, 1)).dag
        for vertex in d21.transactions():
            domains = set(vertex.entry.transaction.involved_domains)
            assert domains <= {DomainId(1, 1), DomainId(1, 2)}

    def test_dag_replicas_agree(self, coordinator_deployment):
        _run_internal_workload(coordinator_deployment)
        for domain in coordinator_deployment.hierarchy.domains_at_height(2):
            dags = [
                sorted(v.tid.number for v in node.dag.transactions())
                for node in coordinator_deployment.nodes_of(domain.id)
            ]
            assert all(d == dags[0] for d in dags)

    def test_root_summary_aggregates_exchanged_volume(self, coordinator_deployment):
        transactions, _ = _run_internal_workload(coordinator_deployment)
        expected_volume = sum(t.payload["amount"] for t in transactions)
        total = coordinator_deployment.root_summary().aggregate_sum("volume:")
        assert total == pytest.approx(expected_volume)

    def test_rounds_are_emitted_even_when_idle(self):
        deployment = make_deployment()
        deployment.start()
        deployment.simulator.run(until_ms=100.0)
        deployment.stop_rounds()
        d21 = deployment.primary_node_of(DomainId(2, 1))
        # Empty block messages still arrive so the parent sees round completion.
        assert d21.dag.rounds_received_from(DomainId(1, 1)) >= 3

    def test_commit_statuses_in_parent_dag(self, coordinator_deployment):
        _run_internal_workload(coordinator_deployment)
        root_dag = coordinator_deployment.primary_node_of(
            coordinator_deployment.hierarchy.root.id
        ).dag
        statuses = {v.entry.status for v in root_dag.transactions()}
        assert statuses == {TransactionStatus.COMMITTED}
