"""Integration tests for mobile consensus (§7, Algorithm 2)."""

import pytest

from repro.common.types import ClientId, DomainId, TransactionId, TransactionKind
from repro.core.mobile import MobileConsensusProtocol
from repro.ledger.transaction import Transaction
from repro.workloads.micropayment import client_account_key
from tests.conftest import internal_transfer, make_deployment

D01, D02, D03 = DomainId(0, 1), DomainId(0, 2), DomainId(0, 3)
D11, D12, D13 = DomainId(1, 1), DomainId(1, 2), DomainId(1, 3)

MOBILE_CLIENT = ClientId(home=D01, index=1)


def _mobile_tx(number, remote, amount=5.0, client=MOBILE_CLIENT, home=D11):
    sender = client_account_key(client)
    recipient = f"acct:{remote.name}:0"
    return Transaction(
        tid=TransactionId(number=number, origin=client),
        kind=TransactionKind.MOBILE,
        involved_domains=(remote,),
        payload={"op": "transfer", "sender": sender, "recipient": recipient, "amount": amount},
        read_keys=(sender, recipient),
        write_keys=(sender, recipient),
        client=client,
        home_domain=home,
        remote_domain=remote,
    )


def _mobile_component(deployment, domain_id) -> MobileConsensusProtocol:
    node = deployment.primary_node_of(domain_id)
    return next(c for c in node.components if isinstance(c, MobileConsensusProtocol))


@pytest.fixture
def mobile_deployment():
    return make_deployment(clients={MOBILE_CLIENT: D11})


class TestMobileConsensus:
    def test_remote_domain_processes_mobile_transactions(self, mobile_deployment):
        transactions = [_mobile_tx(n, D12) for n in range(1, 6)]
        summary = mobile_deployment.run_workload(transactions, drain_ms=400.0)
        assert summary.committed == len(transactions)
        remote_ledger = mobile_deployment.ledger_of(D12)
        for tx in transactions:
            assert tx.tid in remote_ledger

    def test_mobile_transactions_do_not_touch_the_home_ledger(self, mobile_deployment):
        transactions = [_mobile_tx(n, D12) for n in range(1, 4)]
        mobile_deployment.run_workload(transactions, drain_ms=400.0)
        home_ledger = mobile_deployment.ledger_of(D11)
        for tx in transactions:
            assert tx.tid not in home_ledger

    def test_state_transferred_once_per_excursion(self, mobile_deployment):
        transactions = [_mobile_tx(n, D12) for n in range(1, 11)]
        mobile_deployment.run_workload(transactions, drain_ms=400.0)
        remote_state = mobile_deployment.state_of(D12)
        # The device's personal account now lives in the remote domain's state.
        assert remote_state.has_account(client_account_key(MOBILE_CLIENT))

    def test_home_lock_and_remote_pointer_flip(self, mobile_deployment):
        transactions = [_mobile_tx(n, D12) for n in range(1, 4)]
        mobile_deployment.run_workload(transactions, drain_ms=400.0)
        home = _mobile_component(mobile_deployment, D11)
        assert home.lock_of(MOBILE_CLIENT) is False
        assert home.remote_of(MOBILE_CLIENT) == D12
        remote = _mobile_component(mobile_deployment, D12)
        assert remote.is_visiting(MOBILE_CLIENT)

    def test_balance_moves_with_the_device(self, mobile_deployment):
        transactions = [_mobile_tx(n, D12, amount=100.0) for n in range(1, 4)]
        mobile_deployment.run_workload(transactions, drain_ms=400.0)
        remote_state = mobile_deployment.state_of(D12)
        # The device started with 10 000 and paid 3 x 100 in the remote domain.
        assert remote_state.balance(client_account_key(MOBILE_CLIENT)) == pytest.approx(9_700.0)
        assert remote_state.balance("acct:D12:0") == pytest.approx(1_000_300.0)

    def test_returning_home_pulls_the_state_back(self, mobile_deployment):
        away = [_mobile_tx(n, D12, amount=50.0) for n in range(1, 4)]
        back_home = internal_transfer(D11, sender_index=2, recipient_index=3,
                                      client=MOBILE_CLIENT)
        summary = mobile_deployment.run_workload(away + [back_home], drain_ms=600.0)
        assert summary.committed == 4
        home = _mobile_component(mobile_deployment, D11)
        assert home.lock_of(MOBILE_CLIENT) is True
        # The personal account (minus what was spent) is back home.
        assert mobile_deployment.state_of(D11).balance(
            client_account_key(MOBILE_CLIENT)
        ) == pytest.approx(10_000.0 - 150.0)

    def test_second_remote_domain_gets_state_from_the_first(self, mobile_deployment):
        first_leg = [_mobile_tx(n, D12, amount=10.0) for n in range(1, 4)]
        second_leg = [_mobile_tx(n, D13, amount=10.0) for n in range(4, 7)]
        summary = mobile_deployment.run_workload(first_leg + second_leg, drain_ms=800.0)
        assert summary.committed == 6
        home = _mobile_component(mobile_deployment, D11)
        assert home.remote_of(MOBILE_CLIENT) == D13
        second_state = mobile_deployment.state_of(D13)
        assert second_state.balance(client_account_key(MOBILE_CLIENT)) == pytest.approx(
            10_000.0 - 60.0
        )

    def test_mobile_latency_amortises_over_the_excursion(self, mobile_deployment):
        transactions = [_mobile_tx(n, D12) for n in range(1, 11)]
        mobile_deployment.run_workload(transactions, drain_ms=400.0)
        records = [mobile_deployment.metrics.record(t.tid) for t in transactions]
        first, rest = records[0], records[1:]
        # The first request pays for the state transfer; later ones are local.
        assert first.latency_ms > max(r.latency_ms for r in rest)
