"""Integration tests for the AHL and SharPer baseline systems."""

import pytest

from repro.baselines.deployment import AHL, SHARPER, BaselineDeployment
from repro.common.config import DeploymentConfig, DomainSpec, HierarchySpec
from repro.common.types import ClientId, DomainId, FailureModel
from repro.errors import ConfigurationError
from repro.workloads.micropayment import MicropaymentApplication
from tests.conftest import cross_transfer, internal_transfer

D01, D02 = DomainId(0, 1), DomainId(0, 2)
D11, D12, D13 = DomainId(1, 1), DomainId(1, 2), DomainId(1, 3)


def _client(leaf, index=1):
    return ClientId(home=leaf, index=index)


def _make(system, failure_model=FailureModel.CRASH, num_shards=4):
    spec = DomainSpec(failure_model=failure_model, faults=1)
    config = DeploymentConfig(
        hierarchy=HierarchySpec(default_spec=spec),
        latency_profile="nearby-eu",
        seed=3,
    )
    application = MicropaymentApplication(accounts_per_domain=16)
    return BaselineDeployment(
        system=system,
        config=config,
        application=application,
        num_shards=num_shards,
        shard_spec=spec,
    )


class TestBaselineTopology:
    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            BaselineDeployment(system="bitcoin")

    def test_flat_topology_shape(self):
        deployment = _make(AHL)
        assert len(deployment.hierarchy.height1_domains()) == 4
        assert deployment.reference_committee_domain.height == 2

    def test_committee_is_lca_of_every_shard_pair(self):
        deployment = _make(AHL)
        committee = deployment.reference_committee_domain.id
        assert (
            deployment.hierarchy.lowest_common_ancestor([D11, D13]).id == committee
        )


@pytest.mark.parametrize("system", [AHL, SHARPER])
class TestBaselineExecution:
    def test_internal_transactions_commit(self, system):
        deployment = _make(system)
        transactions = [
            internal_transfer(D11, sender_index=i, recipient_index=i + 1, client=_client(D01))
            for i in range(5)
        ]
        summary = deployment.run_workload(transactions, drain_ms=200.0)
        assert summary.committed == 5

    def test_cross_shard_transaction_commits_on_both_shards(self, system):
        deployment = _make(system)
        tx = cross_transfer((D11, D12), client=_client(D01))
        summary = deployment.run_workload([tx], drain_ms=300.0)
        assert summary.committed == 1
        for shard in (D11, D12):
            assert tx.tid in deployment.ledger_of(shard)

    def test_cross_shard_transfer_moves_funds(self, system):
        deployment = _make(system)
        tx = cross_transfer((D11, D12), sender_index=0, recipient_index=1, amount=40.0,
                            client=_client(D01))
        deployment.run_workload([tx], drain_ms=300.0)
        assert deployment.state_of(D11).balance("acct:D11:0") == 1_000_000 - 40
        assert deployment.state_of(D12).balance("acct:D12:1") == 1_000_000 + 40

    def test_concurrent_cross_shard_transactions_commit(self, system):
        deployment = _make(system)
        clients = [_client(D01), _client(D02)]
        transactions = [
            cross_transfer(
                (D11, D12) if i % 2 == 0 else (D12, D13),
                sender_index=i % 3,
                recipient_index=(i + 1) % 3,
                client=clients[i % 2],
            )
            for i in range(12)
        ]
        summary = deployment.run_workload(transactions, drain_ms=600.0)
        assert summary.committed == len(transactions)

    def test_byzantine_shards_commit(self, system):
        deployment = _make(system, failure_model=FailureModel.BYZANTINE)
        tx = cross_transfer((D11, D12), client=_client(D01))
        summary = deployment.run_workload([tx], drain_ms=400.0)
        assert summary.committed == 1


class TestAhlSpecifics:
    def test_committee_coordinates_every_cross_shard_transaction(self):
        from repro.baselines.ahl import AhlReferenceCommitteeProtocol

        deployment = _make(AHL)
        transactions = [
            cross_transfer((D11, D12), client=_client(D01)),
            cross_transfer((D12, D13), client=_client(D02)),
        ]
        deployment.run_workload(transactions, drain_ms=400.0)
        committee_primary = deployment.primary_node_of(
            deployment.reference_committee_domain.id
        )
        component = next(
            c
            for c in committee_primary.components
            if isinstance(c, AhlReferenceCommitteeProtocol)
        )
        assert component.is_reference_committee_member
        coordinated = set(component.coordinated_transactions())
        assert {t.tid for t in transactions} <= coordinated


class TestSharperSpecifics:
    def test_no_traffic_through_the_committee_domain(self):
        deployment = _make(SHARPER)
        tx = cross_transfer((D11, D12), client=_client(D01))
        deployment.run_workload([tx], drain_ms=300.0)
        root_nodes = deployment.nodes_of(deployment.hierarchy.root.id)
        assert all(node.cpu.jobs_executed == 0 for node in root_nodes)

    def test_replicas_of_both_shards_hold_the_transaction(self):
        deployment = _make(SHARPER)
        tx = cross_transfer((D11, D12), client=_client(D01))
        deployment.run_workload([tx], drain_ms=300.0)
        for shard in (D11, D12):
            for node in deployment.nodes_of(shard):
                assert tx.tid in node.ledger
