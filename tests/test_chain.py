"""Unit and property tests for the linear (height-1) blockchain ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.common.types import (
    DomainId,
    SequenceNumber,
    TransactionId,
    TransactionKind,
    TransactionStatus,
)
from repro.errors import ChainIntegrityError, LedgerError, UnknownBlockError
from repro.ledger.chain import GENESIS_HASH, LinearLedger
from repro.ledger.transaction import CommittedEntry, Transaction

D11, D12 = DomainId(1, 1), DomainId(1, 2)


def _tx(number, domains=(D11,), kind=TransactionKind.INTERNAL):
    return Transaction(
        tid=TransactionId(number=number),
        kind=kind,
        involved_domains=tuple(domains),
        payload={"n": number},
    )


class TestAppend:
    def test_positions_are_consecutive(self):
        ledger = LinearLedger(D11)
        for number in range(1, 6):
            record = ledger.append_transaction(_tx(number))
            assert record.position == number
        assert len(ledger) == 5
        assert ledger.next_position() == 6

    def test_first_record_chains_to_genesis(self):
        ledger = LinearLedger(D11)
        record = ledger.append_transaction(_tx(1))
        assert record.previous_hash == GENESIS_HASH

    def test_hash_chain_links_records(self):
        ledger = LinearLedger(D11)
        first = ledger.append_transaction(_tx(1))
        second = ledger.append_transaction(_tx(2))
        assert second.previous_hash == first.block_hash
        assert ledger.head_hash == second.block_hash

    def test_duplicate_append_rejected(self):
        ledger = LinearLedger(D11)
        tx = _tx(1)
        ledger.append_transaction(tx)
        with pytest.raises(LedgerError):
            ledger.append_transaction(tx)

    def test_cross_domain_sequence_merges_foreign_parts(self):
        ledger = LinearLedger(D11)
        tx = _tx(5, domains=(D11, D12), kind=TransactionKind.CROSS_DOMAIN)
        record = ledger.append_transaction(
            tx, sequence=SequenceNumber.single(D12, 9)
        )
        assert record.entry.position_in(D11) == 1
        assert record.entry.position_in(D12) == 9

    def test_entry_for_wrong_domain_rejected(self):
        ledger = LinearLedger(D11)
        tx = _tx(1, domains=(D12,))
        entry = CommittedEntry(transaction=tx, sequence=SequenceNumber.single(D12, 1))
        with pytest.raises(LedgerError):
            ledger.append(entry)

    def test_gap_in_positions_rejected(self):
        ledger = LinearLedger(D11)
        tx = _tx(1)
        entry = CommittedEntry(transaction=tx, sequence=SequenceNumber.single(D11, 5))
        with pytest.raises(LedgerError):
            ledger.append(entry)


class TestQueries:
    def test_lookup_by_tid_and_position(self):
        ledger = LinearLedger(D11)
        tx = _tx(7)
        ledger.append_transaction(tx)
        assert ledger.position_of(tx.tid) == 1
        assert ledger.entry_of(tx.tid).tid == tx.tid
        assert ledger.record_at(1).entry.tid == tx.tid
        assert tx.tid in ledger

    def test_unknown_lookups_raise(self):
        ledger = LinearLedger(D11)
        with pytest.raises(UnknownBlockError):
            ledger.position_of(TransactionId(number=404))
        with pytest.raises(UnknownBlockError):
            ledger.record_at(1)

    def test_relative_order(self):
        ledger = LinearLedger(D11)
        first, second = _tx(1), _tx(2)
        ledger.append_transaction(first)
        ledger.append_transaction(second)
        assert ledger.relative_order(first.tid, second.tid) == -1
        assert ledger.relative_order(second.tid, first.tid) == 1
        assert ledger.relative_order(first.tid, first.tid) == 0

    def test_entries_between(self):
        ledger = LinearLedger(D11)
        for number in range(1, 6):
            ledger.append_transaction(_tx(number))
        middle = ledger.entries_between(2, 4)
        assert [entry.position_in(D11) for entry in middle] == [2, 3, 4]
        with pytest.raises(LedgerError):
            ledger.entries_between(0, 3)

    def test_committed_order(self):
        ledger = LinearLedger(D11)
        txs = [_tx(n) for n in (3, 1, 2)]
        for tx in txs:
            ledger.append_transaction(tx)
        assert ledger.committed_order() == [tx.tid for tx in txs]

    def test_mark_status_flips_only_status(self):
        ledger = LinearLedger(D11)
        tx = _tx(1)
        ledger.append_transaction(tx)
        ledger.mark_status(tx.tid, TransactionStatus.ABORTED)
        assert ledger.entry_of(tx.tid).status is TransactionStatus.ABORTED
        assert ledger.verify_integrity()


class TestIntegrity:
    def test_fresh_ledger_verifies(self):
        ledger = LinearLedger(D11)
        for number in range(1, 10):
            ledger.append_transaction(_tx(number))
        assert ledger.verify_integrity()

    def test_tampered_record_detected(self):
        ledger = LinearLedger(D11)
        ledger.append_transaction(_tx(1))
        ledger.append_transaction(_tx(2))
        # Tamper with the stored chain directly.
        record = ledger._records[0]
        ledger._records[0] = type(record)(
            position=record.position,
            entry=record.entry,
            previous_hash=record.previous_hash,
            block_hash=b"\x00" * 32,
        )
        with pytest.raises(ChainIntegrityError):
            ledger.verify_integrity()

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=60, unique=True))
    def test_append_sequence_always_verifies(self, numbers):
        ledger = LinearLedger(D11)
        for number in numbers:
            ledger.append_transaction(_tx(number))
        assert ledger.verify_integrity()
        assert [r.position for r in ledger] == list(range(1, len(numbers) + 1))
