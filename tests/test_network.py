"""Unit tests for the latency model and the simulated network."""

import pytest

from repro.errors import NetworkError
from repro.sim.latency import (
    lan_profile,
    latency_profile,
    nearby_eu_profile,
    uniform_profile,
    wide_area_profile,
)
from repro.sim.network import Network
from repro.sim.simulator import Simulator


class _Probe:
    """Minimal endpoint recording deliveries."""

    def __init__(self, address, region):
        self.address = address
        self.region = region
        self.received = []

    def deliver(self, envelope):
        self.received.append(envelope)


class TestLatencyProfiles:
    def test_nearby_profile_uses_paper_rtts(self):
        profile = nearby_eu_profile()
        assert profile.rtt("FR", "MI") == 11.0
        assert profile.rtt("MI", "LDN") == 25.0
        assert profile.rtt("LDN", "PAR") == 10.0

    def test_rtt_is_symmetric(self):
        profile = wide_area_profile()
        assert profile.rtt("TY", "VA") == profile.rtt("VA", "TY")

    def test_intra_region_rtt_is_small(self):
        profile = nearby_eu_profile()
        assert profile.rtt("FR", "FR") < 1.0

    def test_unknown_pair_raises(self):
        with pytest.raises(NetworkError):
            nearby_eu_profile().rtt("FR", "TY")

    def test_one_way_is_half_rtt_plus_serialization(self):
        profile = nearby_eu_profile()
        one_way = profile.one_way_ms("FR", "MI", size_kb=0.2, rng=None)
        assert one_way == pytest.approx(5.5 + 0.2 / profile.bandwidth_kb_per_ms)

    def test_wide_area_is_slower_than_nearby_on_average(self):
        assert wide_area_profile().mean_rtt() > nearby_eu_profile().mean_rtt()

    def test_lan_profile_has_single_region(self):
        assert lan_profile().regions == ("LOCAL",)

    def test_profile_lookup_by_name(self):
        assert latency_profile("nearby-eu").name == "nearby-eu"
        assert latency_profile("wide-area").name == "wide-area"
        with pytest.raises(NetworkError):
            latency_profile("mars")

    def test_uniform_profile(self):
        profile = uniform_profile(("A", "B", "C"), rtt_ms=30.0)
        assert profile.rtt("A", "C") == 30.0


class TestNetwork:
    def _build(self, drop_rate=0.0):
        sim = Simulator(seed=1)
        net = Network(sim, nearby_eu_profile(), drop_rate=drop_rate)
        a = _Probe("a", "FR")
        b = _Probe("b", "MI")
        net.register(a)
        net.register(b)
        return sim, net, a, b

    def test_delivery_happens_after_latency(self):
        sim, net, a, b = self._build()
        net.send("a", "b", {"kind": "ping"})
        sim.run_until_idle()
        assert len(b.received) == 1
        assert b.received[0].deliver_at >= 5.5

    def test_duplicate_registration_rejected(self):
        sim, net, a, b = self._build()
        with pytest.raises(NetworkError):
            net.register(a)

    def test_unknown_recipient_rejected(self):
        sim, net, a, b = self._build()
        with pytest.raises(NetworkError):
            net.send("a", "ghost", {})

    def test_partition_blocks_traffic_until_healed(self):
        sim, net, a, b = self._build()
        net.partition("a", "b")
        net.send("a", "b", "blocked")
        sim.run_until_idle()
        assert not b.received
        net.heal("a", "b")
        net.send("a", "b", "open")
        sim.run_until_idle()
        assert len(b.received) == 1

    def test_crashed_endpoint_receives_nothing(self):
        sim, net, a, b = self._build()
        net.crash("b")
        net.send("a", "b", "lost")
        sim.run_until_idle()
        assert not b.received
        assert net.stats.messages_dropped == 1
        net.recover("b")
        net.send("a", "b", "found")
        sim.run_until_idle()
        assert len(b.received) == 1

    def test_drop_rate_loses_some_messages(self):
        sim, net, a, b = self._build(drop_rate=0.5)
        for _ in range(200):
            net.send("a", "b", "maybe")
        sim.run_until_idle()
        assert 0 < len(b.received) < 200

    def test_multicast_skips_sender(self):
        sim, net, a, b = self._build()
        sent = net.multicast("a", ["a", "b"], "hello")
        assert sent == 1

    def test_stats_track_wide_area_traffic(self):
        sim, net, a, b = self._build()
        net.send("a", "b", "far")
        c = _Probe("c", "FR")
        net.register(c)
        net.send("a", "c", "near")
        sim.run_until_idle()
        assert net.stats.messages_sent == 2
        assert net.stats.wide_area_messages == 1
