"""System-wide invariants checked over randomly generated workloads."""

import pytest

from repro.common.config import WorkloadConfig
from repro.common.types import CrossDomainProtocol, TransactionStatus
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.micropayment import MicropaymentApplication
from tests.conftest import make_deployment


def _run_generated_workload(protocol, seed, cross_ratio=0.4, contention=0.3, n=60):
    deployment = make_deployment(protocol, seed=seed)
    config = WorkloadConfig(
        num_transactions=n,
        cross_domain_ratio=cross_ratio,
        contention_ratio=contention,
        accounts_per_domain=32,
        hot_accounts_per_domain=4,
        seed=seed,
    )
    workload = WorkloadGenerator(deployment.hierarchy, config, num_clients=6).generate()
    summary = deployment.run_workload(workload.transactions, drain_ms=600.0)
    return deployment, workload, summary


@pytest.mark.parametrize("seed", [1, 7, 42])
class TestCoordinatorInvariants:
    def test_money_is_conserved_across_the_whole_network(self, seed):
        deployment, _, _ = _run_generated_workload(CrossDomainProtocol.COORDINATOR, seed)
        total = sum(
            deployment.state_of(domain.id).totals("acct:")
            for domain in deployment.hierarchy.height1_domains()
        )
        expected = 4 * 32 * 1_000_000.0  # four domains, 32 accounts each
        assert total == pytest.approx(expected)

    def test_every_issued_transaction_reaches_a_final_state(self, seed):
        _, workload, summary = _run_generated_workload(
            CrossDomainProtocol.COORDINATOR, seed
        )
        assert summary.committed + summary.aborted == len(workload.transactions)
        assert summary.pending == 0

    def test_cross_domain_entries_match_on_all_involved_ledgers(self, seed):
        deployment, workload, _ = _run_generated_workload(
            CrossDomainProtocol.COORDINATOR, seed
        )
        for tx in workload.transactions:
            if len(tx.involved_domains) < 2:
                continue
            presence = [
                tx.tid in deployment.ledger_of(domain) for domain in tx.involved_domains
            ]
            assert all(presence) or not any(presence)

    def test_ledgers_and_hash_chains_verify_everywhere(self, seed):
        deployment, _, _ = _run_generated_workload(CrossDomainProtocol.COORDINATOR, seed)
        for domain in deployment.hierarchy.height1_domains():
            for node in deployment.nodes_of(domain.id):
                assert node.ledger.verify_integrity()


@pytest.mark.parametrize("seed", [3, 11])
class TestOptimisticInvariants:
    def test_surviving_transactions_are_consistently_ordered(self, seed):
        deployment, workload, _ = _run_generated_workload(
            CrossDomainProtocol.OPTIMISTIC, seed, cross_ratio=0.6, contention=0.5
        )
        survivors = [
            t
            for t in workload.transactions
            if len(t.involved_domains) > 1
            and deployment.metrics.record(t.tid).is_committed
        ]
        for i, first in enumerate(survivors):
            for second in survivors[i + 1 :]:
                shared = set(first.involved_domains) & set(second.involved_domains)
                if len(shared) < 2:
                    continue
                orders = {
                    deployment.ledger_of(d).relative_order(first.tid, second.tid)
                    for d in shared
                }
                assert len(orders) == 1

    def test_aborted_transactions_never_stay_optimistically_committed(self, seed):
        deployment, workload, _ = _run_generated_workload(
            CrossDomainProtocol.OPTIMISTIC, seed, cross_ratio=0.6, contention=0.5
        )
        for tx in workload.transactions:
            record = deployment.metrics.record(tx.tid)
            if not record.is_aborted:
                continue
            for domain in tx.involved_domains:
                ledger = deployment.ledger_of(domain)
                if tx.tid in ledger:
                    assert ledger.entry_of(tx.tid).status is TransactionStatus.ABORTED

    def test_every_transaction_reaches_a_final_state(self, seed):
        _, workload, summary = _run_generated_workload(
            CrossDomainProtocol.OPTIMISTIC, seed, cross_ratio=0.6, contention=0.5
        )
        assert summary.committed + summary.aborted == len(workload.transactions)
