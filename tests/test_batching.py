"""The batched ordering core: Batcher mechanics, spec knobs, safety, goldens.

Four layers of coverage:

* unit tests for :class:`~repro.consensus.base.Batch` /
  :class:`~repro.consensus.base.Batcher` (size trigger, timeout trigger,
  ``batch_size=1`` passthrough, deposed-primary drop, timer hygiene);
* the scenario-spec surface (validation, JSON round-trip, builder, sweeps);
* adversarial coverage: every registered ``byz-*`` fault-plan scenario runs
  with ``batch_size > 1`` under full invariant checking (including the new
  batch-atomicity invariant);
* a golden regression pinning ``batch_size=1`` to the *pre-refactor* seed
  behaviour: result and trace digests recorded from the unbatched engines
  before the batching refactor landed must still match bit for bit.
"""

import hashlib
import json

import pytest

from repro.common.config import DeploymentConfig
from repro.consensus.base import Batch, Batcher, payload_digest_of
from repro.errors import ConfigurationError, ConsensusError, NotPrimaryError
from repro.scenarios import Scenario, ScenarioRunner, registry
from repro.sim.simulator import Simulator


# ---------------------------------------------------------------------------
# Unit level: Batch
# ---------------------------------------------------------------------------


def test_batch_digest_is_order_sensitive_and_stable():
    first = Batch(("a", "b"))
    second = Batch(("a", "b"))
    reordered = Batch(("b", "a"))
    assert first.canonical_bytes() == second.canonical_bytes()
    assert first == second
    assert first.canonical_bytes() != reordered.canonical_bytes()
    assert len(first) == 2
    assert list(first) == ["a", "b"]
    assert len(first.entry_ids) == 2
    assert first.entry_ids[0] == payload_digest_of("a").hex()[:16]


def test_empty_batch_is_rejected():
    with pytest.raises(ConsensusError):
        Batch(())


def test_batch_transaction_ids_flatten_nested_batches():
    class _Tid:
        def __init__(self, name):
            self.name = name

    class _Tx:
        def __init__(self, name):
            self.tid = _Tid(name)

    class _Single:
        def __init__(self, name):
            self.transaction = _Tx(name)

    class _Many:
        def __init__(self, *names):
            self.transactions = tuple(_Tx(name) for name in names)

    batch = Batch((_Single("t1"), _Many("t2", "t3"), _Single("t4")))
    assert batch.transaction_ids() == ("t1", "t2", "t3", "t4")


# ---------------------------------------------------------------------------
# Unit level: Batcher driven by a stub engine on a real simulator
# ---------------------------------------------------------------------------


class _StubEngine:
    """Just enough engine surface for the Batcher: propose + timers + trace."""

    def __init__(self, simulator, primary=True):
        self.simulator = simulator
        self.is_primary = primary
        self.proposed = []

        class _Domain:
            name = "D11"

        self.domain = _Domain()

        class _Host:
            address = "D11:n0"

            def set_timer(host_self, delay_ms, callback):
                return simulator.set_timer(delay_ms, callback)

        self._host = _Host()

    def propose(self, payload):
        self.proposed.append(payload)
        return len(self.proposed)

    def _trace(self, kind, slot, **detail):
        pass


def test_batcher_size_one_is_direct_passthrough():
    simulator = Simulator()
    engine = _StubEngine(simulator)
    batcher = Batcher(engine, batch_size=1)
    assert batcher.submit("p1") == 1
    assert engine.proposed == ["p1"]  # raw payload, no Batch wrapper
    assert batcher.pending_count == 0


def test_batcher_flushes_when_batch_fills():
    simulator = Simulator()
    engine = _StubEngine(simulator)
    batcher = Batcher(engine, batch_size=3, batch_timeout_ms=50.0)
    assert batcher.submit("p1") is None
    assert batcher.submit("p2") is None
    assert batcher.submit("p3") == 1
    assert engine.proposed == [Batch(("p1", "p2", "p3"))]
    assert batcher.flush_counts == (1, 0)
    # The armed timeout must have been cancelled: nothing left to run.
    simulator.run_until_idle()
    assert engine.proposed == [Batch(("p1", "p2", "p3"))]


def test_batcher_flushes_underfilled_batch_on_timeout():
    simulator = Simulator()
    engine = _StubEngine(simulator)
    batcher = Batcher(engine, batch_size=32, batch_timeout_ms=5.0)
    batcher.submit("p1")
    batcher.submit("p2")
    assert engine.proposed == []
    simulator.run_until_idle()
    assert engine.proposed == [Batch(("p1", "p2"))]
    assert batcher.flush_counts == (0, 1)


def test_batcher_rejects_submissions_on_non_primary():
    simulator = Simulator()
    engine = _StubEngine(simulator, primary=False)
    batcher = Batcher(engine, batch_size=4)
    with pytest.raises(NotPrimaryError):
        batcher.submit("p1")


def test_batcher_drops_pending_payloads_when_deposed():
    simulator = Simulator()
    engine = _StubEngine(simulator)
    batcher = Batcher(engine, batch_size=8, batch_timeout_ms=5.0)
    batcher.submit("p1")
    engine.is_primary = False  # view change before the timeout fires
    simulator.run_until_idle()
    assert engine.proposed == []
    assert batcher.pending_count == 0


def test_batcher_validates_its_knobs():
    engine = _StubEngine(Simulator())
    with pytest.raises(ConsensusError):
        Batcher(engine, batch_size=0)
    with pytest.raises(ConsensusError):
        Batcher(engine, batch_size=2, batch_timeout_ms=0.0)


def test_batch_timeout_timers_do_not_leak_heap_entries():
    """Re-armed batch timeouts must not accumulate dead events (satellite).

    Every size-triggered flush cancels the pending timeout; over a long run
    the simulator heap must stay bounded instead of carrying one cancelled
    timer per batch.
    """
    simulator = Simulator()
    engine = _StubEngine(simulator)
    batcher = Batcher(engine, batch_size=4, batch_timeout_ms=5.0)
    for round_number in range(2_000):
        for item in range(4):
            batcher.submit(f"p{round_number}:{item}")
    assert len(engine.proposed) == 2_000
    # 2000 armed-then-cancelled timers: the compacting queue must have
    # dropped almost all of them (bound is the compaction threshold, not
    # the number of batches).
    assert simulator._queue.heap_size < 200


# ---------------------------------------------------------------------------
# Spec surface
# ---------------------------------------------------------------------------


def test_scenario_batching_knobs_round_trip_and_validate():
    scenario = Scenario.build().batching(16, batch_timeout_ms=3.5).finish()
    assert scenario.batch_size == 16
    assert scenario.batch_timeout_ms == 3.5
    assert Scenario.from_json(scenario.to_json()) == scenario
    assert "size=16" in scenario.describe()
    config = scenario.deployment_config(seed=1)
    assert config.batch_size == 16
    assert config.batch_timeout_ms == 3.5
    with pytest.raises(ConfigurationError):
        Scenario(batch_size=0)
    with pytest.raises(ConfigurationError):
        Scenario(batch_size=2.5)
    with pytest.raises(ConfigurationError):
        Scenario(batch_timeout_ms=0.0)
    with pytest.raises(ConfigurationError):
        DeploymentConfig(batch_size=0)


def test_batch_size_sweeps_through_overrides():
    base = registry.get("fig07a")
    derived = base.with_overrides(batch_size=8, batch_timeout_ms=2.0)
    assert derived.batch_size == 8
    assert derived.batch_timeout_ms == 2.0
    assert base.batch_size == 1  # default untouched


def test_batch_sweep_family_is_registered():
    assert registry.get("batch-sweep").batch_size == 1
    for size in registry.BATCH_SWEEP_SIZES:
        scenario = registry.get(f"batch-sweep-b{size:03d}")
        assert scenario.batch_size == size
        assert scenario.workload.cross_domain_ratio == 0.0


# ---------------------------------------------------------------------------
# Adversarial: byz-* fault plans with batching + full invariant checking
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", registry.ADVERSARIAL_SCENARIOS)
def test_adversarial_scenarios_stay_safe_with_batching(name):
    scenario = registry.get(name).with_overrides(
        num_transactions=32, num_clients=6, batch_size=2, batch_timeout_ms=2.0
    )
    run = ScenarioRunner(check_invariants=True).execute(scenario)
    assert run.summary is not None
    report = run.check_invariants()
    assert report.ok
    assert "batch-atomicity" in report.checks_run


def test_batched_equivocation_storm_stays_fixed():
    """byz-equivocation at ``batch_size=2`` is the historical event storm.

    A replica that adopted the equivocating primary's forged payload used to
    refuse the honest decide echo forever; the stuck transaction kept the
    closed-loop client (and with it the whole run) alive to the simulated-time
    cap, and the block-propagation rounds amplified the idle time into ~7M
    events over ~150 wall seconds.  With the f+1 distinct-echo override the
    run completes in milliseconds.  Gate events-per-committed-transaction so
    any regression on the storming path fails loudly instead of timing out CI:
    the fixed run measures ~330 events/tx, the storm measured ~65,000.
    """
    scenario = registry.get("byz-equivocation").with_overrides(
        num_transactions=32, num_clients=6, batch_size=2, batch_timeout_ms=2.0
    )
    run = ScenarioRunner(check_invariants=True).execute(scenario)
    summary = run.summary
    assert summary is not None and summary.committed > 0
    assert summary.pending == 0
    events_per_tx = len(run.trace) / summary.committed
    assert events_per_tx < 2000, (
        f"byz-equivocation @ batch_size=2 regressed: "
        f"{events_per_tx:.0f} trace events per committed transaction"
    )
    # The storm's signature was a wedged replica re-querying forever: the
    # honest echoes must win within a handful of observations per forgery.
    kinds = run.trace.kinds()
    assert kinds.get("echo-adopt", 0) > 0
    assert kinds.get("equivocation-observed", 0) < 200


def test_batched_run_emits_batch_events_and_checks_atomicity():
    scenario = registry.get("fig07a").with_overrides(
        num_transactions=48, num_clients=8, batch_size=8
    )
    run = ScenarioRunner(check_invariants=True).execute(scenario)
    kinds = run.trace.kinds()
    assert kinds.get("batch-propose", 0) > 0
    assert kinds.get("batch-decide", 0) > 0
    sizes = [event.get("size") for event in run.trace.events("batch-decide")]
    assert any(size and size > 1 for size in sizes)
    report = run.check_invariants()
    assert report.ok and "batch-atomicity" in report.checks_run


def test_batch_atomicity_checker_flags_torn_batches():
    """Self-test: forged traces with torn batches must be caught.

    Two forgeries over one real batched run: (a) a batch whose decide-time
    appends happened in the wrong order (its ``tids`` reversed), and (b) a
    batch whose appends interleave with a foreign append (an unrelated
    same-node append retimed into the middle of the batch's run).
    """
    from repro.faults.invariants import InvariantChecker
    from repro.faults.trace import TraceRecorder

    scenario = registry.get("fig07a").with_overrides(
        num_transactions=48, num_clients=8, batch_size=8
    )
    run = ScenarioRunner().execute(scenario)

    def decide_time_appends(event):
        tids = set(event.get("tids", ()))
        return [
            e for e in run.trace.events("append")
            if e.node == event.node and e.at_ms == event.at_ms and e.tid in tids
        ]

    tearable = [
        event
        for event in run.trace.events("batch-decide")
        if len(decide_time_appends(event)) >= 2
    ]
    assert tearable, "expected a batch with >= 2 decide-time appends"
    target = tearable[0]

    def replay(mutate):
        forged = TraceRecorder()
        for event in run.trace:
            kwargs = {
                "domain": event.domain,
                "node": event.node,
                "tid": event.tid,
                "slot": event.slot,
                "view": event.view,
                "digest": event.digest,
            }
            detail = dict(event.detail)
            at_ms = mutate(event, kwargs, detail)
            forged.record(event.kind, at_ms=at_ms, **kwargs, **detail)
        return InvariantChecker(run.deployment, trace=forged).check()

    # (a) wrong order: the batch claims the reverse append order.
    def reverse_tids(event, kwargs, detail):
        if event.seq == target.seq:
            detail["tids"] = list(reversed(detail["tids"]))
        return event.at_ms

    report = replay(reverse_tids)
    assert report.of("batch-atomicity")

    # (b) interleave: retime a foreign append into the batch's instant.
    foreign = next(
        e for e in run.trace.events("append")
        if e.node == target.node
        and e.at_ms != target.at_ms
        and e.tid not in set(target.get("tids", ()))
    )
    batch_appends = decide_time_appends(target)
    middle_seq = batch_appends[0].seq  # after the first batch append

    def retime_foreign(event, kwargs, detail):
        if event.seq == foreign.seq:
            return target.at_ms
        return event.at_ms

    # Rebuild with the foreign append moved between the batch's appends: the
    # recorder preserves arrival order, so re-record it right after the first
    # batch append instead of at its original position.
    forged = TraceRecorder()
    for event in run.trace:
        if event.seq == foreign.seq:
            continue
        detail = dict(event.detail)
        forged.record(
            event.kind, at_ms=event.at_ms, domain=event.domain, node=event.node,
            tid=event.tid, slot=event.slot, view=event.view, digest=event.digest,
            **detail,
        )
        if event.seq == middle_seq:
            forged.record(
                "append", at_ms=target.at_ms, domain=foreign.domain,
                node=foreign.node, tid=foreign.tid, slot=foreign.slot,
                view=foreign.view, digest=foreign.digest, **dict(foreign.detail),
            )
    report = InvariantChecker(run.deployment, trace=forged).check()
    assert report.of("batch-atomicity")


# ---------------------------------------------------------------------------
# Golden regression: batch_size=1 is bit-identical to the pre-refactor seed
# ---------------------------------------------------------------------------

#: Digests recorded from the unbatched engines at the commit *before* the
#: batching refactor (scenarios scaled to num_transactions=24, num_clients=4).
#: batch_size=1 must reproduce these traces bit for bit.  The byz-equivocation
#: digests were re-recorded when gap-recovery retries gained their capped
#: exponential backoff (150 -> 1200 ms): the equivocating primary keeps a gap
#: open long enough for repeat queries, whose timing intentionally changed —
#: the committed/aborted outcomes are identical to the pre-backoff run.
PRE_REFACTOR_GOLDENS = {
    "fig07a": {
        "result_sha256": "6c4c123cf17afd038916fd837e88b4db9e15faae43199d64e92130c950ce52d5",
        "trace_sha256": "6e42928e3c445223f9826b62f6c786c0fbb6d4cbbc383e0e98b6a89516428d15",
        "events_executed": 36850,
    },
    "byz-equivocation": {
        # Trace digest re-recorded when decide-echo refusal became overridable
        # by f+1 distinct echoes (the batched-equivocation storm fix): replicas
        # wedged on a forged payload now adopt the honest decision, adding a
        # handful of echo-adopt events.  The result digest — every committed/
        # aborted outcome and the performance summary — is unchanged.
        "result_sha256": "ea33194884d79bdcc09efa1fa0fb2a43b7ab6c5e27b19cb28fdf3dde25792ffe",
        "trace_sha256": "4dd1fe34fd1a18fb0e13fe200c7d7af738986a7cf2e0cf932efeddefe9b2a5bf",
        "events_executed": 32780,
    },
}


@pytest.mark.parametrize("name", sorted(PRE_REFACTOR_GOLDENS))
def test_batch_size_one_matches_pre_refactor_goldens(name):
    golden = PRE_REFACTOR_GOLDENS[name]
    scenario = registry.get(name).with_overrides(num_transactions=24, num_clients=4)
    assert scenario.batch_size == 1
    run = ScenarioRunner().execute(scenario)
    result_digest = hashlib.sha256(
        json.dumps(run.run().to_dict(), sort_keys=True).encode()
    ).hexdigest()
    trace_digest = hashlib.sha256(run.trace.to_json().encode()).hexdigest()
    assert result_digest == golden["result_sha256"]
    assert trace_digest == golden["trace_sha256"]
    assert run.deployment.simulator.events_executed == golden["events_executed"]


def test_deposed_primary_drop_clears_component_dedup_state():
    """A dropped (never-proposed) payload must unblock future retransmissions.

    The primary buffers an internal order, is deposed before the batch
    flushes, and the batcher drops the buffer: the internal protocol's
    in-flight marker must be cleared so the node, if re-elected, re-proposes
    the client's retransmission instead of swallowing it.
    """
    from repro.common.config import DeploymentConfig, DomainSpec, HierarchySpec
    from repro.common.types import CrossDomainProtocol, DomainId
    from repro.core.internal import InternalTransactionProtocol
    from repro.core.messages import ClientRequest
    from repro.core.system import SaguaroDeployment
    from repro.topology.builders import build_tree
    from repro.topology.regions import placement_for_profile
    from repro.workloads.micropayment import MicropaymentApplication

    config = DeploymentConfig(
        hierarchy=HierarchySpec(default_spec=DomainSpec()),
        protocol=CrossDomainProtocol.COORDINATOR,
        batch_size=8,
        batch_timeout_ms=5.0,
        seed=11,
    )
    hierarchy = build_tree(config.hierarchy)
    placement_for_profile(hierarchy, config.latency_profile)
    deployment = SaguaroDeployment(
        config, MicropaymentApplication(accounts_per_domain=8), hierarchy
    )
    domain = DomainId(height=1, index=1)
    primary = deployment.primary_node_of(domain)
    internal = next(
        c for c in primary.components if isinstance(c, InternalTransactionProtocol)
    )
    from repro.common.types import TransactionId, TransactionKind
    from repro.ledger.transaction import Transaction
    from repro.workloads.micropayment import account_key

    sender, recipient = account_key(domain, 0), account_key(domain, 1)
    transaction = Transaction(
        tid=TransactionId(number=99_001),
        kind=TransactionKind.INTERNAL,
        involved_domains=(domain,),
        payload={"op": "transfer", "sender": sender, "recipient": recipient, "amount": 1.0},
        read_keys=(sender, recipient),
        write_keys=(sender, recipient),
    )
    request = ClientRequest(
        transaction=transaction, client_address="probe", issued_at=0.0
    )
    assert internal.handle_message(request, "probe")
    assert transaction.tid in internal._in_flight
    assert primary.engine.batcher.pending_count == 1
    # Depose the primary before the batch timeout fires.
    primary.engine._view = 1
    assert not primary.engine.is_primary
    deployment.simulator.run(until_ms=50.0)
    assert primary.engine.batcher.pending_count == 0
    assert transaction.tid not in internal._in_flight
    drops = deployment.trace.events("batch-drop")
    assert drops and drops[0].get("size") == 1


def test_smoke_rejects_unknown_mode():
    from repro.faults import smoke

    assert smoke.main("bogus") == 2


def test_batched_runs_are_deterministic():
    """Same scenario + seed with batching on ⇒ bit-identical runs."""
    scenario = registry.get("batch-sweep-b032").with_overrides(
        num_transactions=48, num_clients=8
    )
    runner = ScenarioRunner()
    first = runner.execute(scenario)
    second = runner.execute(scenario)
    assert json.dumps(first.run().to_dict(), sort_keys=True) == json.dumps(
        second.run().to_dict(), sort_keys=True
    )
    assert first.trace.to_json() == second.trace.to_json()
