"""Smoke tests: every example must import and run under a small workload.

Each example exposes ``main(overrides)`` where ``overrides`` is forwarded to
:meth:`repro.scenarios.Scenario.with_overrides`; shrinking the workload keeps
this suite fast while still executing every example end-to-end, so the
examples cannot silently rot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (module, overrides) — small enough to run in a couple of seconds each.
EXAMPLES = (
    ("quickstart", {"num_transactions": 12, "num_clients": 2}),
    ("micropayment_demo", {"num_transactions": 12, "num_clients": 2}),
    ("wide_area_aggregation", {"num_transactions": 12, "num_clients": 2}),
    ("ridesharing_mobility", {"num_transactions": 6, "mobile_txns_per_excursion": 3}),
)


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.mark.parametrize("name,overrides", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs_with_a_small_workload(name, overrides, capsys):
    module = load_example(name)
    module.main(overrides)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_every_example_file_is_smoke_tested():
    on_disk = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == {name for name, _ in EXAMPLES}


def test_examples_build_scenarios_declaratively():
    from repro.scenarios import Scenario

    for name, _ in EXAMPLES:
        module = load_example(name)
        scenario = module.build_scenario()
        assert isinstance(scenario, Scenario)
        assert Scenario.from_dict(scenario.to_dict()) == scenario
