"""Batch-aware cross-domain commit: knobs, grouped 2PC, failure paths, goldens.

Five layers of coverage:

* the scenario-spec surface for the ``xdomain_batch_size`` /
  ``xdomain_batch_timeout_ms`` knobs (validation, JSON round-trip, builder,
  sweeps, registry family);
* grouped end-to-end runs: group events on the trace, aggregated exchanges,
  full invariant checking including the group-atomicity invariant;
* grouped 2PC failure paths: a participant that never orders the group's
  part, a coordinator deposed mid-group (batch drop → ``on_submission_dropped``
  → re-group and retry), and a mixed group where one member aborts while its
  siblings commit;
* adversarial coverage: every ``byz-*`` fault-plan scenario with grouping on;
* a golden regression pinning ``xdomain_batch_size=1`` to the *pre-grouping*
  coordinator: result and trace digests recorded before this refactor landed
  must still match bit for bit.
"""

import hashlib
import json

import pytest

from repro.common.config import DeploymentConfig
from repro.common.types import ClientId, CrossDomainProtocol, DomainId
from repro.core.coordinator import CoordinatorCrossDomainProtocol
from repro.core.messages import (
    CoordinatorPrepareOrder,
    CrossForward,
    GroupCrossPrepared,
    GroupPrepareOrder,
)
from repro.errors import ConfigurationError, ConsensusError
from repro.scenarios import Scenario, ScenarioRunner, registry
from tests.conftest import cross_transfer, make_deployment

D01, D02 = DomainId(0, 1), DomainId(0, 2)
D11, D12, D13, D14 = (DomainId(1, i) for i in range(1, 5))
D21 = DomainId(2, 1)


def _coordinator_component(deployment, domain_id) -> CoordinatorCrossDomainProtocol:
    node = deployment.primary_node_of(domain_id)
    for component in node.components:
        if isinstance(component, CoordinatorCrossDomainProtocol):
            return component
    raise AssertionError("coordinator component missing")


# ---------------------------------------------------------------------------
# Spec surface
# ---------------------------------------------------------------------------


def test_scenario_xdomain_knobs_round_trip_and_validate():
    scenario = Scenario.build().xdomain_batching(16, xdomain_batch_timeout_ms=3.5).finish()
    assert scenario.xdomain_batch_size == 16
    assert scenario.xdomain_batch_timeout_ms == 3.5
    assert Scenario.from_json(scenario.to_json()) == scenario
    assert "xdomain batching: size=16" in scenario.describe()
    config = scenario.deployment_config(seed=1)
    assert config.xdomain_batch_size == 16
    assert config.xdomain_batch_timeout_ms == 3.5
    with pytest.raises(ConfigurationError):
        Scenario(xdomain_batch_size=0)
    with pytest.raises(ConfigurationError):
        Scenario(xdomain_batch_size=2.5)
    with pytest.raises(ConfigurationError):
        Scenario(xdomain_batch_timeout_ms=0.0)
    with pytest.raises(ConfigurationError):
        DeploymentConfig(xdomain_batch_size=0)
    with pytest.raises(ConfigurationError):
        DeploymentConfig(xdomain_batch_timeout_ms=-1.0)


def test_xdomain_knobs_sweep_through_overrides():
    base = registry.get("fig10a")
    derived = base.with_overrides(xdomain_batch_size=8, xdomain_batch_timeout_ms=2.0)
    assert derived.xdomain_batch_size == 8
    assert derived.xdomain_batch_timeout_ms == 2.0
    assert base.xdomain_batch_size == 1  # default untouched
    swept = ScenarioRunner().sweep  # sweeps resolve the knob by name
    assert callable(swept)


def test_xbatch_sweep_family_is_registered():
    base = registry.get("xbatch-sweep")
    assert base.xdomain_batch_size == 1
    assert base.latency_profile == "wide-area"
    assert base.workload.cross_domain_ratio == 1.0
    for size in registry.XBATCH_SWEEP_SIZES:
        scenario = registry.get(f"xbatch-sweep-g{size:03d}")
        assert scenario.xdomain_batch_size == size


def test_submit_group_rejects_non_group_payloads():
    deployment = make_deployment()
    primary = deployment.primary_node_of(D11)
    with pytest.raises(ConsensusError):
        primary.engine.submit_group("not a group payload")


# ---------------------------------------------------------------------------
# Grouped end-to-end
# ---------------------------------------------------------------------------


def test_grouped_run_commits_and_checks_group_atomicity():
    scenario = registry.get("fig10a").with_overrides(
        num_clients=16, xdomain_batch_size=8
    )
    run = ScenarioRunner(check_invariants=True).execute(scenario)
    assert run.summary is not None
    assert run.summary.pending == 0
    kinds = run.trace.kinds()
    assert kinds.get("handoff:group-prepare", 0) > 0
    assert kinds.get("handoff:group-vote", 0) > 0
    assert kinds.get("handoff:group-commit", 0) > 0
    exchanges = run.trace.group_exchanges()
    assert exchanges
    # Every exchange's commit is a subset of its membership.
    multi_member = 0
    for (_, gid), events in exchanges.items():
        members = set(events["prepare"][0].get("tids", ()))
        if len(members) > 1:
            multi_member += 1
        for event in events["commit"]:
            assert set(event.get("tids", ())) <= members
    assert multi_member > 0  # grouping actually aggregated transactions
    report = run.check_invariants()
    assert report.ok
    assert "group-atomicity" in report.checks_run


def test_grouped_runs_are_deterministic():
    scenario = registry.get("fig10a").with_overrides(
        num_transactions=48, num_clients=8, xdomain_batch_size=4
    )
    runner = ScenarioRunner()
    first = runner.execute(scenario)
    second = runner.execute(scenario)
    assert json.dumps(first.run().to_dict(), sort_keys=True) == json.dumps(
        second.run().to_dict(), sort_keys=True
    )
    assert first.trace.to_json() == second.trace.to_json()


@pytest.mark.parametrize("name", registry.ADVERSARIAL_SCENARIOS)
def test_adversarial_scenarios_stay_safe_with_grouping(name):
    scenario = registry.get(name).with_overrides(
        num_transactions=32, num_clients=6,
        xdomain_batch_size=4, xdomain_batch_timeout_ms=5.0,
    )
    run = ScenarioRunner(check_invariants=True).execute(scenario)
    assert run.summary is not None
    report = run.check_invariants()
    assert report.ok
    assert "group-atomicity" in report.checks_run


def test_smoke_xbatch_mode_is_table_driven():
    from repro.faults import smoke

    assert set(smoke.MODES) >= {"default", "batch", "xbatch"}
    scenarios = smoke.MODES["xbatch"]()
    assert any(s.xdomain_batch_size > 1 for s in scenarios)
    assert smoke.main("bogus") == 2


# ---------------------------------------------------------------------------
# Failure paths
# ---------------------------------------------------------------------------


def _forward(transaction, origin=D11) -> CrossForward:
    return CrossForward(
        transaction=transaction, origin_domain=origin, client_address="probe"
    )


def test_deposed_coordinator_drops_group_and_regroup_retries():
    """Batch drop → ``on_submission_dropped`` → re-group and retry.

    The coordinator groups two cross-domain transactions and submits the
    group into its (batched) consensus engine; it is deposed before the
    engine batch flushes, so the batcher drops the unproposed group payload.
    The drop notification must clear the members' dedup state, and the node,
    re-elected, must re-group retransmitted forwards into a fresh group.
    """
    from repro.common.config import DomainSpec, HierarchySpec
    from repro.core.system import SaguaroDeployment
    from repro.topology.builders import build_tree
    from repro.topology.regions import placement_for_profile
    from repro.workloads.micropayment import MicropaymentApplication

    config = DeploymentConfig(
        hierarchy=HierarchySpec(default_spec=DomainSpec()),
        protocol=CrossDomainProtocol.COORDINATOR,
        batch_size=8,
        batch_timeout_ms=5.0,
        xdomain_batch_size=2,
        xdomain_batch_timeout_ms=5.0,
        seed=11,
    )
    hierarchy = build_tree(config.hierarchy)
    placement_for_profile(hierarchy, config.latency_profile)
    deployment = SaguaroDeployment(
        config, MicropaymentApplication(accounts_per_domain=8), hierarchy
    )
    component = _coordinator_component(deployment, D21)
    primary = component.node
    first = cross_transfer((D11, D12), client=ClientId(home=D01, index=1))
    second = cross_transfer((D11, D12), client=ClientId(home=D02, index=1))
    assert component.handle_message(_forward(first), "probe")
    assert component.handle_message(_forward(second), "probe")
    # The group filled (size 2) and was submitted into the engine batcher.
    assert first.tid in component._coord_pending
    assert len(component._group_pending) == 1
    assert primary.engine.batcher.pending_count == 1
    # Deposed before the engine batch flushes: the group payload is dropped.
    primary.engine._view = 1
    assert not primary.engine.is_primary
    deployment.simulator.run(until_ms=50.0)
    assert primary.engine.batcher.pending_count == 0
    assert not component._group_pending
    assert first.tid not in component._coord_pending
    assert second.tid not in component._coord_pending
    drops = deployment.trace.events("batch-drop")
    assert drops and drops[0].get("size") == 1
    # Re-elected: retransmitted forwards re-group into a fresh group.
    primary.engine._view = 0
    assert primary.engine.is_primary
    assert component.handle_message(_forward(first), "probe")
    assert component.handle_message(_forward(second), "probe")
    assert len(component._group_pending) == 1
    regrouped = next(iter(component._group_pending.values()))
    assert {m.transaction.tid for m in regrouped.members} == {first.tid, second.tid}


def test_mixed_group_one_member_aborts_while_siblings_commit(monkeypatch):
    """Per-member outcomes: a member whose votes never complete is finally
    aborted while its fully-prepared sibling commits, in one exchange.

    Driven coordinator-side with forged votes (the wide-area latencies keep
    the real participants' votes out of the window): the sibling's votes
    arrive from both participants, the victim's never do, and the group
    timer must commit exactly the prepared member.
    """
    import repro.core.coordinator as coordinator_module

    monkeypatch.setattr(coordinator_module, "MAX_ATTEMPTS", 1)
    deployment = make_deployment(latency_profile="wide-area")
    # Rebuild the component view with grouping on: patch the knobs directly
    # (the deployment was built ungrouped; grouping is per-component state).
    component = _coordinator_component(deployment, D21)
    component._group_size = 2
    component._group_timeout_ms = 5.0
    survivor = cross_transfer((D11, D12), client=ClientId(home=D01, index=1))
    victim = cross_transfer((D11, D12), client=ClientId(home=D02, index=1))
    assert component.handle_message(_forward(survivor), "probe")
    assert component.handle_message(_forward(victim), "probe")
    # Let the coordinator's internal consensus decide the group prepare (the
    # participants are a wide-area round trip away, so their real votes
    # cannot arrive before the short cross-domain timer below).
    deployment.simulator.run(until_ms=40.0)
    groups = component.coordinated_groups()
    assert len(groups) == 1
    gid = groups[0]
    state = component._groups[gid]
    assert set(component.group_members(gid)) == {survivor.tid, victim.tid}
    # Forge both participants' aggregated votes for the survivor only.
    for participant, seq in ((D11, 7), (D12, 9)):
        message = GroupCrossPrepared(
            group_id=gid,
            participant_domain=participant,
            coordinator_sequence=state.coordinator_sequence,
            participant_sequence=seq,
            tids=(survivor.tid,),
        )
        assert component.handle_message(message, "probe")
    # Fire the group timer early (before the real wide-area votes land).
    component._on_group_timer_expired(gid)
    deployment.simulator.run(until_ms=deployment.simulator.now + 60.0)
    survivor_state = component._coord[survivor.tid]
    victim_state = component._coord[victim.tid]
    assert survivor_state.committed and not survivor_state.aborted
    assert victim_state.aborted and not victim_state.committed
    commit_events = deployment.trace.events("handoff:group-commit")
    assert commit_events and commit_events[0].get("tids") == [survivor.tid.name]
    abort_events = deployment.trace.events("handoff:group-abort")
    assert abort_events and abort_events[0].get("tids") == [victim.tid.name]
    assert abort_events[0].get("will_retry") is False


def test_participant_that_never_orders_the_group_part_aborts_cleanly():
    """A participant domain that never orders the group's part (crashed past
    its fault tolerance) must final-abort the members after the retries are
    exhausted — and safety (cross-atomicity per member) must hold."""
    from repro.common.config import TimerConfig
    from repro.scenarios.spec import FaultEvent

    quick = TimerConfig(
        request_timeout_ms=400.0,
        cross_domain_timeout_ms=120.0,
        deadlock_backoff_ms=10.0,
        commit_query_timeout_ms=150.0,
        view_change_timeout_ms=4_000.0,  # beyond the run: D12 stays down
    )
    scenario = registry.get("fig07a").with_overrides(
        num_transactions=24,
        num_clients=6,
        cross_domain_ratio=0.4,
        xdomain_batch_size=4,
        xdomain_batch_timeout_ms=5.0,
        timers=quick,
        fault_schedule=tuple(
            FaultEvent(at_ms=0.5, domain="D12", node=index) for index in range(3)
        ),
        max_simulated_ms=8_000.0,
    )
    run = ScenarioRunner().execute(scenario)
    assert run.summary is not None
    # Cross-domain transactions involving D12 can never prepare there; after
    # MAX_ATTEMPTS grouped retries they must be finally aborted, not wedged.
    assert run.summary.aborted > 0
    report = run.check_invariants(expect_liveness=False)
    assert report.ok
    aborts = [
        event
        for event in run.trace.events("handoff:group-abort")
        if event.get("will_retry") is False
    ]
    assert aborts


# ---------------------------------------------------------------------------
# Group-atomicity checker self-test (forged traces)
# ---------------------------------------------------------------------------


def _replay_without(run, drop_predicate, mutate=None):
    from repro.faults.invariants import InvariantChecker
    from repro.faults.trace import TraceRecorder

    forged = TraceRecorder()
    for event in run.trace:
        if drop_predicate(event):
            continue
        detail = dict(event.detail)
        if mutate is not None:
            mutate(event, detail)
        forged.record(
            event.kind, at_ms=event.at_ms, domain=event.domain, node=event.node,
            tid=event.tid, slot=event.slot, view=event.view, digest=event.digest,
            **detail,
        )
    return InvariantChecker(run.deployment, trace=forged).check()


def _grouped_run_with_multi_member_commit():
    scenario = registry.get("fig10a").with_overrides(
        num_clients=16, xdomain_batch_size=8
    )
    run = ScenarioRunner().execute(scenario)
    for event in run.trace.events("handoff:group-commit"):
        if len(event.get("tids", ())) >= 2:
            return run, event
    raise AssertionError("expected a multi-member group commit")


def test_group_atomicity_checker_flags_commit_without_votes():
    run, commit = _grouped_run_with_multi_member_commit()
    gid = commit.get("gid")
    victim = commit.get("tids")[0]

    def drop_victim_votes(event):
        return (
            event.kind == "handoff:group-vote"
            and event.get("gid") == gid
            and victim in event.get("tids", ())
        )

    report = _replay_without(run, drop_victim_votes)
    found = report.of("group-atomicity")
    assert found and any("without prepared votes" in str(v) for v in found)


def test_group_atomicity_checker_flags_dropped_prepared_member():
    run, commit = _grouped_run_with_multi_member_commit()
    gid = commit.get("gid")
    victim = commit.get("tids")[0]

    def strip_victim_from_commit(event, detail):
        if event.kind == "handoff:group-commit" and event.get("gid") == gid:
            detail["tids"] = [tid for tid in detail.get("tids", []) if tid != victim]

    report = _replay_without(run, lambda event: False, strip_victim_from_commit)
    found = report.of("group-atomicity")
    assert found and any("left uncommitted" in str(v) for v in found)


# ---------------------------------------------------------------------------
# Golden regression: xdomain_batch_size=1 is bit-identical to pre-grouping
# ---------------------------------------------------------------------------

#: Digests recorded from the per-transaction coordinator at the commit
#: *before* grouped 2PC landed (scenarios scaled to num_transactions=24,
#: num_clients=4).  xdomain_batch_size=1 must reproduce these bit for bit.
PRE_GROUPING_GOLDENS = {
    "fig10a": {
        "result_sha256": "ddb3a0a244c603e5870d1949d8e2b62396563ea33a6d5cfce4755b20da8f810c",
        "trace_sha256": "aec7aa7a7a42810f828c7e85be5ea6f4b059d615b7227693cf24815b48531928",
        "events_executed": 39558,
    },
    "fig07b": {
        "result_sha256": "13154d6b369e1d8e9cd0ec4cfbcdfcef3d7e3b14e8a830a80daa71411b9466c1",
        "trace_sha256": "569326434b4a306f20eb942a6ff4616cbe900d45c563aba06875c07060f52b44",
        "events_executed": 39805,
    },
}


@pytest.mark.parametrize("name", sorted(PRE_GROUPING_GOLDENS))
def test_xdomain_batch_size_one_matches_pre_grouping_goldens(name):
    golden = PRE_GROUPING_GOLDENS[name]
    scenario = registry.get(name).with_overrides(num_transactions=24, num_clients=4)
    assert scenario.xdomain_batch_size == 1
    run = ScenarioRunner().execute(scenario)
    result_digest = hashlib.sha256(
        json.dumps(run.run().to_dict(), sort_keys=True).encode()
    ).hexdigest()
    trace_digest = hashlib.sha256(run.trace.to_json().encode()).hexdigest()
    assert result_digest == golden["result_sha256"]
    assert trace_digest == golden["trace_sha256"]
    assert run.deployment.simulator.events_executed == golden["events_executed"]
