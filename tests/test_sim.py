"""Unit tests for the discrete-event simulator, CPU model, and RNG registry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.bench import make_storm
from repro.sim.cpu import CpuQueue
from repro.sim.events import EventQueue, HeapEventQueue
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(9.0, lambda: order.append("c"))
        while queue:
            queue.pop().callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        queue.pop().callback()
        queue.pop().callback()
        assert order == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0


class TestEventQueueCompaction:
    """Cancelled timers must not accumulate in fault-heavy runs."""

    def test_mass_cancellation_keeps_the_heap_bounded(self):
        queue = EventQueue()
        events = [queue.push(float(i + 1), lambda: None) for i in range(1000)]
        for event in events:
            event.cancel()
        assert len(queue) == 0
        assert not queue
        # Compaction kicked in: the dead entries were dropped eagerly, not
        # carried until their fire times.
        assert queue.heap_size <= 64

    def test_live_events_survive_compaction_in_order(self):
        queue = EventQueue()
        keep = [queue.push(float(1000 + i), lambda i=i: i) for i in range(5)]
        cancel = [queue.push(float(i + 1), lambda: None) for i in range(500)]
        for event in cancel:
            event.cancel()
        assert len(queue) == len(keep)
        assert queue.peek_time() == 1000.0
        popped = [queue.pop().time for _ in range(len(keep))]
        assert popped == sorted(popped)
        assert queue.pop() is None

    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        live = queue.push(1.0, lambda: None)
        dead = queue.push(2.0, lambda: None)
        dead.cancel()
        assert len(queue) == 1
        assert queue.pop() is live

    def test_cancel_after_pop_does_not_corrupt_bookkeeping(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is first
        popped.cancel()  # a timer firing then being cancelled later
        assert len(queue) == 1
        assert queue.pop() is not None
        assert len(queue) == 0

    def test_double_cancel_is_counted_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1


def _pop_order(queue, ops):
    """Replay a ``make_storm`` op list, recording the (time, sequence) order."""
    now = 0.0
    recent = []
    order = []
    for op, value in ops:
        if op == "push":
            recent.append(queue.push(now + value, lambda: None))
            if len(recent) > 64:
                del recent[:32]
        elif op == "pop":
            event = queue.pop()
            if event is not None:
                now = event.time
                order.append((event.time, event.sequence))
        else:
            index = int(value)
            if index <= len(recent):
                recent[-index].cancel()
    return order


class TestCalendarWheel:
    """Behaviour specific to the bucketed calendar queue: cancellations at the
    head of future buckets, the far-future overflow tier, compaction across
    all three tiers, and differential equivalence with the legacy heap."""

    def test_peek_time_drains_a_cancelled_run_at_the_head(self):
        queue = EventQueue()
        doomed = [queue.push(float(i), lambda: None) for i in range(1, 6)]
        survivor = queue.push(50.0, lambda: None)
        for event in doomed:
            event.cancel()
        assert queue.peek_time() == 50.0
        assert queue.pop() is survivor
        assert queue.peek_time() is None
        assert queue.pop() is None

    def test_cancelled_far_future_event_is_never_popped(self):
        queue = EventQueue()
        near = queue.push(1.0, lambda: None)
        far = queue.push(10_000.0, lambda: None)  # beyond the wheel horizon
        far.cancel()
        assert queue.pop() is near
        assert queue.peek_time() is None
        assert queue.pop() is None

    def test_compaction_spans_buckets_and_far_overflow(self):
        queue = EventQueue()
        keep = [queue.push(t, lambda: None) for t in (0.5, 40.0, 9_000.0)]
        dead = []
        for i in range(300):
            dead.append(queue.push(0.1 + i * 0.4, lambda: None))  # bucketed
            dead.append(queue.push(5_000.0 + i, lambda: None))  # far overflow
        for event in dead:
            event.cancel()
        assert len(queue) == len(keep)
        # Compaction swept the dead entries out of every tier; at most one
        # sub-threshold batch of cancelled entries may still be queued.
        assert queue.heap_size <= 64 + len(keep)
        assert [queue.pop().time for _ in range(len(keep))] == [0.5, 40.0, 9_000.0]
        assert queue.pop() is None

    def test_reanchoring_preserves_order_with_a_tiny_wheel(self):
        # Eight 1ms buckets force constant overflow into the far tier and
        # frequent re-anchoring; pop order must still be (time, sequence).
        queue = EventQueue(bucket_width_ms=1.0, num_buckets=8)
        times = [float((i * 37) % 500) for i in range(400)]
        for t in times:
            queue.push(t, lambda: None)
        popped = [queue.pop() for _ in range(len(times))]
        assert [e.time for e in popped] == sorted(times)
        sequences_at_ties = {}
        for event in popped:
            sequences_at_ties.setdefault(event.time, []).append(event.sequence)
        for sequences in sequences_at_ties.values():
            assert sequences == sorted(sequences)

    def test_differential_pop_order_matches_legacy_heap(self):
        # The same seeded push/cancel/pop storm (including far-future timers
        # that trigger re-anchoring) must pop identically from both queues.
        ops = make_storm(num_events=6_000, seed=99)
        assert _pop_order(EventQueue(), ops) == _pop_order(HeapEventQueue(), ops)

    def test_differential_holds_for_a_tiny_wheel(self):
        ops = make_storm(num_events=2_000, seed=7)
        wheel = EventQueue(bucket_width_ms=0.5, num_buckets=16)
        assert _pop_order(wheel, ops) == _pop_order(HeapEventQueue(), ops)

    def test_args_are_stored_and_dispatched(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda a, b: (a, b), args=(1, 2))
        assert queue.pop() is event
        assert event.callback(*event.args) == (1, 2)


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(10.0, lambda: times.append(sim.now))
        sim.schedule(3.0, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [3.0, 10.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(sim.now)
            sim.schedule(5.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run_until_idle()
        assert seen == [1.0, 6.0]

    def test_run_until_bound_stops_clock_at_bound(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        stopped_at = sim.run(until_ms=50.0)
        assert stopped_at == 50.0
        assert sim.pending_events == 1

    def test_stop_when_predicate(self):
        sim = Simulator()
        counter = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda: counter.append(1))
        sim.run(stop_when=lambda: len(counter) >= 3)
        assert len(counter) == 3

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_with_args_dispatches_them(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b, sim.now)), args=("x", 2))
        sim.run_until_idle()
        assert seen == [("x", 2, 1.0)]

    def test_timer_cancellation_prevents_callback(self):
        sim = Simulator()
        fired = []
        timer = sim.set_timer(5.0, lambda: fired.append(1))
        timer.cancel()
        sim.run_until_idle()
        assert not fired
        assert not timer.active

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_executed == 4


class TestCpuQueue:
    def test_idle_cpu_starts_immediately(self):
        cpu = CpuQueue()
        assert cpu.submit(10.0, 2.0) == 12.0

    def test_busy_cpu_queues_work(self):
        cpu = CpuQueue()
        cpu.submit(0.0, 5.0)
        assert cpu.submit(1.0, 2.0) == 7.0

    def test_gap_between_jobs_leaves_cpu_idle(self):
        cpu = CpuQueue()
        cpu.submit(0.0, 1.0)
        assert cpu.submit(10.0, 1.0) == 11.0

    def test_utilisation_is_bounded(self):
        cpu = CpuQueue()
        cpu.submit(0.0, 5.0)
        assert cpu.utilisation(10.0) == pytest.approx(0.5)
        assert cpu.utilisation(2.0) == 1.0
        assert cpu.utilisation(0.0) == 0.0

    def test_negative_service_time_rejected(self):
        with pytest.raises(SimulationError):
            CpuQueue().submit(0.0, -1.0)

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 10)), min_size=1, max_size=50))
    def test_completions_are_monotonic_for_fifo_arrivals(self, jobs):
        cpu = CpuQueue()
        arrivals = sorted(arrival for arrival, _ in jobs)
        completions = []
        for arrival, (_, service) in zip(arrivals, jobs):
            completions.append(cpu.submit(arrival, service))
        assert completions == sorted(completions)


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("net")
        b = RngRegistry(42).stream("net")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_are_independent(self):
        registry = RngRegistry(42)
        net = registry.stream("net")
        workload = registry.stream("workload")
        assert [net.random() for _ in range(3)] != [workload.random() for _ in range(3)]

    def test_stream_is_cached(self):
        registry = RngRegistry(1)
        assert registry.stream("x") is registry.stream("x")

    def test_spawned_registry_differs_from_parent(self):
        parent = RngRegistry(7)
        child = parent.spawn("rep-1")
        assert parent.stream("s").random() != child.stream("s").random()
