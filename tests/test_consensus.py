"""Tests for the Paxos and PBFT engines using an in-memory message bus."""

from typing import Any, Dict, List, Tuple

import pytest

from repro.common.types import DomainId, FailureModel
from repro.consensus import PaxosEngine, PbftEngine, engine_for
from repro.errors import NotPrimaryError
from repro.topology.domain import Domain


class _Bus:
    """Synchronous message bus connecting the engines of one domain."""

    def __init__(self) -> None:
        self.queue: List[Tuple[str, str, Any]] = []  # (sender, recipient, message)
        self.hosts: Dict[str, "_FakeHost"] = {}
        self.dropped: set = set()

    def register(self, host: "_FakeHost") -> None:
        self.hosts[host.address] = host

    def deliver_all(self, max_rounds: int = 200) -> None:
        rounds = 0
        while self.queue and rounds < max_rounds:
            sender, recipient, message = self.queue.pop(0)
            rounds += 1
            if recipient in self.dropped or sender in self.dropped:
                continue
            host = self.hosts[recipient]
            host.engine.handle_message(message, sender)


class _FakeHost:
    """Implements the ConsensusHost protocol over the in-memory bus."""

    def __init__(self, domain: Domain, index: int, bus: _Bus) -> None:
        self._domain = domain
        self._address = domain.node_ids[index].name
        self._bus = bus
        self.decisions: List[Tuple[int, Any]] = []
        bus.register(self)
        self.engine = engine_for(self)

    @property
    def address(self) -> str:
        return self._address

    @property
    def hosted_domain(self) -> Domain:
        return self._domain

    def domain_peer_addresses(self) -> List[str]:
        return [n.name for n in self._domain.node_ids if n.name != self._address]

    def send_protocol_message(self, to_address: str, message: Any) -> None:
        self._bus.queue.append((self._address, to_address, message))

    def now(self) -> float:
        return 0.0

    def set_timer(self, delay_ms, callback):  # pragma: no cover - unused in tests
        return None

    def consensus_decided(self, slot: int, payload: Any) -> None:
        self.decisions.append((slot, payload))


def _make_domain(model: FailureModel, faults: int = 1) -> Domain:
    return Domain(id=DomainId(1, 1), failure_model=model, faults=faults)


def _build(model: FailureModel, faults: int = 1):
    bus = _Bus()
    domain = _make_domain(model, faults)
    hosts = [_FakeHost(domain, i, bus) for i in range(len(domain.node_ids))]
    return bus, hosts


@pytest.mark.parametrize("model", [FailureModel.CRASH, FailureModel.BYZANTINE])
class TestNormalCase:
    def test_single_proposal_decided_everywhere(self, model):
        bus, hosts = _build(model)
        primary = hosts[0]
        assert primary.engine.is_primary
        primary.engine.propose("value-1")
        bus.deliver_all()
        for host in hosts:
            assert host.decisions == [(1, "value-1")]

    def test_engine_matches_failure_model(self, model):
        _bus, hosts = _build(model)
        expected = PaxosEngine if model is FailureModel.CRASH else PbftEngine
        assert isinstance(hosts[0].engine, expected)

    def test_multiple_proposals_decided_in_slot_order(self, model):
        bus, hosts = _build(model)
        primary = hosts[0]
        for value in ("a", "b", "c"):
            primary.engine.propose(value)
        bus.deliver_all()
        for host in hosts:
            assert [payload for _, payload in host.decisions] == ["a", "b", "c"]
            assert [slot for slot, _ in host.decisions] == [1, 2, 3]

    def test_replica_cannot_propose(self, model):
        _bus, hosts = _build(model)
        with pytest.raises(NotPrimaryError):
            hosts[1].engine.propose("nope")

    def test_decision_requires_quorum(self, model):
        bus, hosts = _build(model)
        # Drop every replica: the primary alone can never reach quorum.
        for host in hosts[1:]:
            bus.dropped.add(host.address)
        hosts[0].engine.propose("stuck")
        bus.deliver_all()
        assert hosts[0].decisions == []

    def test_decision_survives_f_silent_replicas(self, model):
        bus, hosts = _build(model)
        bus.dropped.add(hosts[-1].address)  # f = 1 silent replica
        hosts[0].engine.propose("resilient")
        bus.deliver_all()
        live = [h for h in hosts if h.address not in bus.dropped]
        for host in live:
            assert host.decisions == [(1, "resilient")]

    def test_larger_domains_reach_agreement(self, model):
        bus, hosts = _build(model, faults=2)
        hosts[0].engine.propose("big-domain")
        bus.deliver_all()
        for host in hosts:
            assert host.decisions == [(1, "big-domain")]


@pytest.mark.parametrize("model", [FailureModel.CRASH, FailureModel.BYZANTINE])
class TestViewChange:
    def test_view_change_elects_next_primary(self, model):
        bus, hosts = _build(model)
        bus.dropped.add(hosts[0].address)  # primary crashes
        for host in hosts[1:]:
            host.engine.suspect_primary()
        bus.deliver_all()
        new_primary = hosts[1]
        assert new_primary.engine.view == 1
        assert new_primary.engine.is_primary

    def test_pending_proposal_reproposed_after_view_change(self, model):
        bus, hosts = _build(model)
        hosts[0].engine.propose("orphan")
        # Deliver the first protocol message to replicas, then crash the primary
        # before the decision completes.
        partial = list(bus.queue)
        bus.queue.clear()
        for sender, recipient, message in partial:
            bus.hosts[recipient].engine.handle_message(message, sender)
        bus.queue.clear()
        bus.dropped.add(hosts[0].address)
        for host in hosts[1:]:
            host.engine.suspect_primary()
        bus.deliver_all()
        survivors = hosts[1:]
        for host in survivors:
            payloads = [payload for _, payload in host.decisions]
            assert payloads == ["orphan"]

    def test_new_proposals_work_after_view_change(self, model):
        bus, hosts = _build(model)
        bus.dropped.add(hosts[0].address)
        for host in hosts[1:]:
            host.engine.suspect_primary()
        bus.deliver_all()
        new_primary = hosts[1]
        new_primary.engine.propose("post-view-change")
        bus.deliver_all()
        for host in hosts[1:]:
            assert ("post-view-change" in [p for _, p in host.decisions])

    def test_stale_view_change_ignored(self, model):
        bus, hosts = _build(model)
        hosts[0].engine.propose("x")
        bus.deliver_all()
        view_before = hosts[0].engine.view
        # A single suspicious replica is not enough to change the view.
        hosts[2].engine.suspect_primary()
        bus.deliver_all()
        assert hosts[0].engine.view == view_before
        assert hosts[0].engine.is_primary
