"""FaultPlan/FaultAction validation, JSON round-trips, and arming behavior."""

import pytest

from repro.common.types import FailureModel
from repro.errors import ConfigurationError, NetworkError
from repro.faults import FAULT_KINDS, FaultAction, FaultPlan
from repro.scenarios import Scenario, ScenarioRunner, registry
from repro.scenarios.runner import materialize
from tests.conftest import make_deployment


def _plan(*actions: FaultAction, name: str = "plan") -> FaultPlan:
    return FaultPlan(name=name, actions=tuple(actions))


class TestFaultActionValidation:
    def test_all_documented_kinds_are_accepted(self):
        for kind in FAULT_KINDS:
            kwargs = {"kind": kind, "at_ms": 1.0, "domain": "D11"}
            if kind in ("partition", "heal"):
                kwargs["peer_domain"] = "D21"
            if kind == "loss":
                kwargs = {"kind": kind, "at_ms": 1.0, "rate": 0.1}
            if kind == "stall":
                kwargs.update(every=3, delay_ms=10.0)
            assert FaultAction(**kwargs).kind == kind

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultAction(kind="meteor-strike", at_ms=1.0, domain="D11")

    def test_negative_time_is_rejected(self):
        with pytest.raises(ConfigurationError, match="negative time"):
            FaultAction(kind="crash", at_ms=-5.0, domain="D11")

    def test_window_must_end_after_it_starts(self):
        with pytest.raises(ConfigurationError, match="until_ms"):
            FaultAction(kind="silence", at_ms=100.0, until_ms=50.0, domain="D11")

    def test_negative_node_index_is_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            FaultAction(kind="crash", at_ms=1.0, domain="D11", node=-1)

    def test_malformed_domain_name_is_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultAction(kind="crash", at_ms=1.0, domain="not-a-domain")

    def test_partition_needs_two_distinct_domains(self):
        with pytest.raises(ConfigurationError, match="peer_domain"):
            FaultAction(kind="partition", at_ms=1.0, domain="D11")
        with pytest.raises(ConfigurationError, match="itself"):
            FaultAction(
                kind="partition", at_ms=1.0, domain="D11", peer_domain="D11"
            )

    def test_loss_needs_a_valid_rate(self):
        with pytest.raises(ConfigurationError, match="rate"):
            FaultAction(kind="loss", at_ms=1.0)
        with pytest.raises(ConfigurationError, match="rate"):
            FaultAction(kind="loss", at_ms=1.0, rate=1.0)


class TestFaultPlanRoundTrip:
    def test_plan_json_round_trip(self):
        plan = _plan(
            FaultAction(kind="silence", at_ms=10.0, domain="D11", until_ms=200.0),
            FaultAction(kind="partition", at_ms=20.0, until_ms=60.0,
                        domain="D11", peer_domain="D21"),
            FaultAction(kind="loss", at_ms=30.0, until_ms=90.0, rate=0.05),
            FaultAction(kind="stale-cert", at_ms=50.0, domain="D12", node=1),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_plan_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown FaultPlan"):
            FaultPlan.from_dict({"actions": [], "frequency": "daily"})
        with pytest.raises(ConfigurationError, match="unknown FaultAction"):
            FaultPlan.from_dict(
                {"actions": [{"kind": "crash", "at_ms": 1.0, "domain": "D11",
                              "severity": "high"}]}
            )

    def test_scenario_with_fault_plan_round_trips(self):
        scenario = registry.get("byz-partition-flap")
        assert scenario.fault_plan  # non-empty by construction
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.fault_plan == scenario.fault_plan

    def test_every_registered_scenario_round_trips(self):
        seen = set()
        for name, scenario in registry.items():
            if id(scenario) in seen:
                continue
            seen.add(id(scenario))
            assert Scenario.from_json(scenario.to_json()) == scenario, name

    def test_fault_plan_override_is_preserved(self):
        plan = _plan(FaultAction(kind="crash", at_ms=5.0, domain="D11"))
        scenario = registry.get("fig07a").with_overrides(fault_plan=plan)
        assert scenario.fault_plan == plan
        assert "fault plan" in scenario.describe()


class TestFaultPlanArming:
    def test_unknown_domain_is_rejected_at_arm_time(self):
        scenario = registry.get("fig07a").with_overrides(
            num_transactions=4, num_clients=2,
            fault_plan=_plan(FaultAction(kind="crash", at_ms=5.0, domain="D19")),
        )
        with pytest.raises(ConfigurationError, match="unknown domain"):
            materialize(scenario)

    def test_out_of_range_node_is_rejected_at_arm_time(self):
        scenario = registry.get("fig07a").with_overrides(
            num_transactions=4, num_clients=2,
            fault_plan=_plan(
                FaultAction(kind="silence", at_ms=5.0, domain="D11", node=99)
            ),
        )
        with pytest.raises(ConfigurationError, match="out of range"):
            materialize(scenario)

    def test_crash_action_crashes_and_recovers_the_primary(self):
        deployment = make_deployment()
        plan = _plan(
            FaultAction(kind="crash", at_ms=10.0, domain="D11", until_ms=50.0)
        )
        plan.arm(deployment)
        primary = deployment.primary_node_of(
            deployment.hierarchy.height1_domains()[0].id
        )
        deployment.simulator.run(until_ms=20.0)
        assert primary.crashed
        deployment.simulator.run(until_ms=60.0)
        assert not primary.crashed

    def test_loss_burst_restores_the_previous_drop_rate(self):
        deployment = make_deployment()
        plan = _plan(FaultAction(kind="loss", at_ms=10.0, until_ms=40.0, rate=0.25))
        plan.arm(deployment)
        deployment.simulator.run(until_ms=20.0)
        assert deployment.network.drop_rate == 0.25
        deployment.simulator.run(until_ms=50.0)
        assert deployment.network.drop_rate == 0.0

    def test_overlapping_loss_bursts_compose_and_restore_base_rate(self):
        deployment = make_deployment()
        plan = _plan(
            FaultAction(kind="loss", at_ms=10.0, until_ms=60.0, rate=0.1),
            FaultAction(kind="loss", at_ms=30.0, until_ms=80.0, rate=0.2),
        )
        plan.arm(deployment)
        sim = deployment.simulator
        sim.run(until_ms=20.0)
        assert deployment.network.drop_rate == 0.1
        sim.run(until_ms=40.0)
        assert deployment.network.drop_rate == 0.2  # max of active bursts
        sim.run(until_ms=70.0)
        assert deployment.network.drop_rate == 0.2  # second burst still active
        sim.run(until_ms=90.0)
        assert deployment.network.drop_rate == 0.0  # base restored at the end

    def test_set_drop_rate_validates_range(self):
        deployment = make_deployment()
        with pytest.raises(NetworkError):
            deployment.network.set_drop_rate(1.5)


class TestLivenessTolerance:
    def _hierarchy(self, failure_model=FailureModel.BYZANTINE):
        return make_deployment(failure_model=failure_model).hierarchy

    def test_empty_plan_is_within_tolerance(self):
        assert FaultPlan().within_tolerance(self._hierarchy())

    def test_bounded_silence_is_tolerated(self):
        plan = _plan(
            FaultAction(kind="silence", at_ms=5.0, domain="D11", until_ms=50.0)
        )
        assert plan.within_tolerance(self._hierarchy())

    def test_unhealed_partition_voids_liveness(self):
        plan = _plan(
            FaultAction(kind="partition", at_ms=5.0, domain="D11", peer_domain="D21")
        )
        assert not plan.within_tolerance(self._hierarchy())

    def test_too_many_permanent_crashes_void_liveness(self):
        plan = _plan(
            FaultAction(kind="crash", at_ms=5.0, domain="D11", node=0),
            FaultAction(kind="crash", at_ms=6.0, domain="D11", node=1),
        )
        assert not plan.within_tolerance(self._hierarchy())

    def test_crash_with_matching_recover_is_tolerated(self):
        plan = _plan(
            FaultAction(kind="crash", at_ms=5.0, domain="D11", node=0),
            FaultAction(kind="crash", at_ms=6.0, domain="D11", node=1),
            FaultAction(kind="recover", at_ms=50.0, domain="D11", node=1),
        )
        assert plan.within_tolerance(self._hierarchy())
