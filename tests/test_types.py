"""Unit tests for identifiers, enums, and sequence numbers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.types import (
    ClientId,
    DomainId,
    FailureModel,
    NodeId,
    SequenceNumber,
    TransactionId,
    domain_size_for_failures,
    quorum_size,
)
from repro.errors import ConfigurationError


class TestDomainId:
    def test_name_follows_paper_convention(self):
        assert DomainId(height=2, index=1).name == "D21"
        assert DomainId(height=0, index=4).name == "D04"

    def test_ordering_is_by_height_then_index(self):
        assert DomainId(1, 2) < DomainId(2, 1)
        assert DomainId(1, 1) < DomainId(1, 2)

    def test_negative_height_rejected(self):
        with pytest.raises(ConfigurationError):
            DomainId(height=-1, index=1)

    def test_zero_index_rejected(self):
        with pytest.raises(ConfigurationError):
            DomainId(height=1, index=0)

    def test_hashable_and_equal(self):
        assert DomainId(1, 1) == DomainId(1, 1)
        assert len({DomainId(1, 1), DomainId(1, 1), DomainId(1, 2)}) == 2


class TestNodeAndClientIds:
    def test_node_name_includes_domain(self):
        node = NodeId(domain=DomainId(1, 3), index=2)
        assert node.name == "D13/n2"

    def test_client_name_includes_home_leaf(self):
        client = ClientId(home=DomainId(0, 2), index=5)
        assert client.name == "D02/c5"

    def test_transaction_id_name_mentions_origin(self):
        client = ClientId(home=DomainId(0, 1), index=1)
        tid = TransactionId(number=7, origin=client)
        assert "tx7" in tid.name and client.name in tid.name

    def test_transaction_id_without_origin(self):
        assert "system" in TransactionId(number=3).name


class TestSequenceNumber:
    def test_single_part(self):
        seq = SequenceNumber.single(DomainId(1, 1), 4)
        assert not seq.is_cross_domain
        assert seq.position_in(DomainId(1, 1)) == 4
        assert seq.position_in(DomainId(1, 2)) is None

    def test_multi_part_is_cross_domain(self):
        seq = SequenceNumber.multi([(DomainId(1, 1), 4), (DomainId(1, 2), 9)])
        assert seq.is_cross_domain
        assert set(seq.domains) == {DomainId(1, 1), DomainId(1, 2)}

    def test_merge_combines_disjoint_parts(self):
        a = SequenceNumber.single(DomainId(1, 1), 4)
        b = SequenceNumber.single(DomainId(1, 2), 9)
        merged = a.merged_with(b)
        assert merged.position_in(DomainId(1, 1)) == 4
        assert merged.position_in(DomainId(1, 2)) == 9

    def test_merge_conflicting_positions_rejected(self):
        a = SequenceNumber.single(DomainId(1, 1), 4)
        b = SequenceNumber.single(DomainId(1, 1), 5)
        with pytest.raises(ConfigurationError):
            a.merged_with(b)

    def test_merge_same_position_is_idempotent(self):
        a = SequenceNumber.single(DomainId(1, 1), 4)
        assert a.merged_with(a) == a

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            SequenceNumber(parts=((DomainId(1, 1), 1), (DomainId(1, 1), 2)))

    def test_str_contains_every_part(self):
        seq = SequenceNumber.multi([(DomainId(1, 1), 1), (DomainId(1, 2), 2)])
        assert "D11" in str(seq) and "D12" in str(seq)


class TestQuorums:
    @pytest.mark.parametrize(
        "nodes,model,expected",
        [
            (3, FailureModel.CRASH, 2),
            (5, FailureModel.CRASH, 3),
            (9, FailureModel.CRASH, 5),
            (4, FailureModel.BYZANTINE, 3),
            (7, FailureModel.BYZANTINE, 5),
            (13, FailureModel.BYZANTINE, 9),
        ],
    )
    def test_quorum_sizes_match_protocol_requirements(self, nodes, model, expected):
        assert quorum_size(nodes, model) == expected

    @pytest.mark.parametrize(
        "faults,model,expected",
        [
            (1, FailureModel.CRASH, 3),
            (2, FailureModel.CRASH, 5),
            (4, FailureModel.CRASH, 9),
            (1, FailureModel.BYZANTINE, 4),
            (2, FailureModel.BYZANTINE, 7),
            (4, FailureModel.BYZANTINE, 13),
        ],
    )
    def test_domain_sizes_match_paper_settings(self, faults, model, expected):
        assert domain_size_for_failures(faults, model) == expected

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            quorum_size(0, FailureModel.CRASH)

    @given(faults=st.integers(min_value=0, max_value=20))
    def test_crash_domains_always_have_majority_quorum(self, faults):
        nodes = domain_size_for_failures(faults, FailureModel.CRASH)
        quorum = quorum_size(nodes, FailureModel.CRASH)
        assert 2 * quorum > nodes

    @given(faults=st.integers(min_value=0, max_value=20))
    def test_byzantine_quorums_intersect_in_honest_node(self, faults):
        nodes = domain_size_for_failures(faults, FailureModel.BYZANTINE)
        quorum = quorum_size(nodes, FailureModel.BYZANTINE)
        # Two quorums intersect in at least f+1 nodes, one of which is honest.
        assert 2 * quorum - nodes >= faults + 1
